package bench

import (
	"sort"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// WorkloadStep is one row of The Workload Run (Figure 2(b)): per executed
// query, its hits and the hit percentage over the cached graphs.
type WorkloadStep struct {
	Index              int
	SubHits, SuperHits int
	ExactHit           bool
	// HitPct is (hits / cached graphs) × 100, the percentage the demo UI
	// shows "upon each executed query".
	HitPct float64
	// TestSpeedup is the per-query C_M/C ratio.
	TestSpeedup float64
}

// RunWorkload reproduces Figure 2(b): the demo deployment (100 molecules,
// GGSX, cache of 50 warmed queries) processing a 10-query workload.
func RunWorkload(seed int64, workloadSize int, policy string) ([]WorkloadStep, *core.Cache, error) {
	dataset := DemoDataset(seed)
	method := ftv.NewGGSXMethod(dataset, 3)
	p, err := core.NewPolicy(policy)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Shards = 1 // sequential reproduction: independent of sharding and window engine
	cfg.Capacity = 50
	cfg.Window = 10
	cfg.Policy = p
	c, err := core.New(method, cfg)
	if err != nil {
		return nil, nil, err
	}

	// Warm with 50 executed queries (the demo's "graph cache with 50
	// executed queries").
	rng := newRand(seed + 21)
	warm, err := gen.NewWorkload(rng, dataset, gen.WorkloadConfig{
		Size: 50, Type: ftv.Subgraph, PoolSize: 50,
		ZipfS: 0, ChainFrac: 0.4, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, q := range warm.Queries {
		if _, err := c.Execute(q.G, q.Type); err != nil {
			return nil, nil, err
		}
	}

	// The measured workload: drawn from a pool overlapping the warm pool's
	// sources so hits occur, like the demo's user-selected workloads.
	run, err := gen.NewWorkload(rng, dataset, gen.WorkloadConfig{
		Size: workloadSize, Type: ftv.Subgraph, PoolSize: 2 * workloadSize,
		ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, nil, err
	}
	var steps []WorkloadStep
	for i, q := range run.Queries {
		cached := c.Len()
		res, err := c.Execute(q.G, q.Type)
		if err != nil {
			return nil, nil, err
		}
		hits := res.SubHitCount() + res.SuperHitCount()
		if res.ExactHit {
			hits++
		}
		pct := 0.0
		if cached > 0 {
			pct = 100 * float64(hits) / float64(cached)
		}
		steps = append(steps, WorkloadStep{
			Index:       i,
			SubHits:     res.SubHitCount(),
			SuperHits:   res.SuperHitCount(),
			ExactHit:    res.ExactHit,
			HitPct:      pct,
			TestSpeedup: res.TestSpeedup(),
		})
	}
	return steps, c, nil
}

// ReplacementResult is Figure 2(c): for each policy, the entry IDs evicted
// when a full 50-entry cache absorbs a 10-query window.
type ReplacementResult struct {
	Policy  string
	Evicted []int // entry IDs chosen as victims
	Kept    int
}

// RunReplacement reproduces Figure 2(c): the cache is filled with exactly
// 50 executed queries, a burst of resubmissions differentiates entry
// utilities (recency, popularity, savings), and then a 10-query window of
// fresh queries forces 10 replacements — under every policy, over the
// identical sequence. "Different graphs are cached out in different
// caches."
func RunReplacement(seed int64, policies []string) ([]ReplacementResult, error) {
	if len(policies) == 0 {
		policies = []string{"lru", "pop", "pin", "pinc", "hd"}
	}
	dataset := DemoDataset(seed)
	// One shared pool of distinct patterns: 50 to fill, 10 to displace.
	w, err := gen.NewWorkload(newRand(seed+33), dataset, gen.WorkloadConfig{
		Size: 1, Type: ftv.Subgraph, PoolSize: 70,
		ZipfS: 0, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, err
	}

	var out []ReplacementResult
	for _, pname := range policies {
		method := ftv.NewGGSXMethod(dataset, 3)
		p, err := core.NewPolicy(pname)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Shards = 1 // sequential reproduction: independent of sharding and window engine
		cfg.Capacity = 50
		cfg.Window = 10
		cfg.Policy = p
		c, err := core.New(method, cfg)
		if err != nil {
			return nil, err
		}

		// Fill to exactly 50 admitted entries (isomorphic pool duplicates
		// exact-hit instead of admitting, so iterate until full).
		next := 0
		for c.Len() < 50 && next < len(w.Pool) {
			q := w.Pool[next]
			next++
			if _, err := c.Execute(q.G, q.Type); err != nil {
				return nil, err
			}
		}
		// Differentiate utilities (exact hits update recency, popularity
		// and savings without admissions). First every cached entry is
		// touched once in shuffled order — distinct recency for LRU,
		// distinct per-entry savings for PIN/PINC (each exact hit credits
		// that entry's own |C_M|) — then a skewed burst separates
		// popularity from recency.
		rng := newRand(seed + 44)
		resident := c.Entries()
		rng.Shuffle(len(resident), func(i, j int) { resident[i], resident[j] = resident[j], resident[i] })
		for _, e := range resident {
			if _, err := c.Execute(e.Graph, e.Type); err != nil {
				return nil, err
			}
		}
		for i := 0; i < 30; i++ {
			e := resident[rng.Intn(1+len(resident)/3)]
			if _, err := c.Execute(e.Graph, e.Type); err != nil {
				return nil, err
			}
		}
		before := map[int]bool{}
		for _, e := range c.Entries() {
			before[e.ID] = true
		}
		// One full window of fresh queries forces 10 evictions.
		evictedBy := 0
		for next < len(w.Pool) && evictedBy < 10 {
			q := w.Pool[next]
			next++
			res, err := c.Execute(q.G, q.Type)
			if err != nil {
				return nil, err
			}
			if !res.ExactHit {
				evictedBy++
			}
		}
		after := map[int]bool{}
		for _, e := range c.Entries() {
			after[e.ID] = true
		}
		var evicted []int
		for id := range before {
			if !after[id] {
				evicted = append(evicted, id)
			}
		}
		sort.Ints(evicted)
		out = append(out, ReplacementResult{Policy: pname, Evicted: evicted, Kept: len(after)})
	}
	return out, nil
}
