package bench

import (
	"fmt"
	"runtime"

	"graphcache/internal/bitset"
	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// MemoryResult is EXP-MEM: resident answer-set memory under the adaptive
// containers and cross-entry interning, against the dense-equivalent
// baseline — what the same resident entries would occupy if every answer
// set were its own ⌈|D|/64⌉-word array (the pre-container representation,
// with no sharing). The derived ratios are stored, not computed on
// demand, so the struct serializes whole into the bench-json artifact.
type MemoryResult struct {
	Tier        string
	DatasetSize int
	Queries     int
	// Entries is the resident entry count after the workload; DistinctSets
	// is how many canonical answer sets they share between them.
	Entries      int
	DistinctSets int
	// AnswerBytes is the intern pool's account: the distinct canonical
	// sets, each charged once. DenseBytes is the dense-equivalent
	// baseline: Entries × (24 + 8·⌈|D|/64⌉), one private dense set per
	// entry.
	AnswerBytes int64
	DenseBytes  int64
	// BytesPerEntry and DenseBytesPerEntry are the two representations
	// amortized per resident entry; Reduction is 1 − actual/dense (the
	// ISSUE-8 acceptance metric: ≥ 0.40 on the scaling tier).
	BytesPerEntry      float64
	DenseBytesPerEntry float64
	Reduction          float64
	// InternHits / InternMisses are the pool's lifetime counters;
	// InternHitRate is hits/(hits+misses) — how often an admission or
	// true-up found its set already pooled.
	InternHits    int64
	InternMisses  int64
	InternHitRate float64
	// CacheBytes is the full ledger (static entry bytes + pooled answer
	// bytes), for context against AnswerBytes.
	CacheBytes int
}

// RunMemory drives one tier's mixed workload through the default engine
// and reports the answer-set memory ledger. The workload generation
// matches ParallelThroughputTier's exactly, so the memory numbers
// describe the same runs the throughput sections measure.
func RunMemory(seed int64, tier ThroughputTier) (*MemoryResult, error) {
	dataset := MoleculeDataset(seed, tier.DatasetSize)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gen.NewWorkload(newRand(seed+7), dataset, gen.WorkloadConfig{
		Size: tier.Queries, Mixed: true, PoolSize: max(tier.PoolSize, 8),
		ZipfS: tier.ZipfS, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, err
	}
	reqs := make([]core.Request, len(w.Queries))
	for i, q := range w.Queries {
		reqs[i] = core.Request{Graph: q.G, Type: q.Type}
	}
	c, err := core.New(method, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	for i, o := range c.ExecuteAll(reqs, runtime.GOMAXPROCS(0)) {
		if o.Err != nil {
			return nil, fmt.Errorf("query %d: %w", i, o.Err)
		}
	}

	entries := c.Entries()
	distinct := make(map[*bitset.Set]bool, len(entries))
	for _, e := range entries {
		distinct[e.Answers()] = true
	}
	snap := c.Stats()
	r := &MemoryResult{
		Tier:         tier.Name,
		DatasetSize:  tier.DatasetSize,
		Queries:      tier.Queries,
		Entries:      len(entries),
		DistinctSets: len(distinct),
		AnswerBytes:  snap.AnswerBytes,
		DenseBytes:   int64(len(entries)) * int64(24+8*((tier.DatasetSize+63)/64)),
		InternHits:   snap.InternHits,
		InternMisses: snap.InternMisses,
		CacheBytes:   c.Bytes(),
	}
	if r.Entries > 0 {
		r.BytesPerEntry = float64(r.AnswerBytes) / float64(r.Entries)
		r.DenseBytesPerEntry = float64(r.DenseBytes) / float64(r.Entries)
	}
	if r.DenseBytes > 0 {
		r.Reduction = 1 - float64(r.AnswerBytes)/float64(r.DenseBytes)
	}
	if total := r.InternHits + r.InternMisses; total > 0 {
		r.InternHitRate = float64(r.InternHits) / float64(total)
	}
	return r, nil
}
