package bench

import (
	"testing"
)

func TestFig3Shape(t *testing.T) {
	res, err := RunFig3(2018)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 3 shape: a warmed 50-entry cache, both hit kinds
	// present, pruned candidates, test speedup > 1.
	if res.CachedQueries == 0 {
		t.Fatal("cache not warmed")
	}
	if res.SubHits == 0 {
		t.Error("no sub-case hit (paper: 1)")
	}
	if res.SuperHits == 0 {
		t.Error("no super-case hit (paper: 3)")
	}
	if res.C >= res.CM {
		t.Errorf("no pruning: C=%d CM=%d", res.C, res.CM)
	}
	// R and S are disjoint (S is removed from C before verification), so
	// A = R + S exactly (Figure 3(h): "A consists of R and S").
	if res.A != res.R+res.S {
		t.Errorf("A=%d != R+S=%d+%d", res.A, res.R, res.S)
	}
	if len(res.SureIDs) != res.S || len(res.AnswerIDs) != res.A {
		t.Error("ID lists inconsistent with counts")
	}
	if res.TestSpeedup <= 1 {
		t.Errorf("test speedup %.2f, want > 1 (paper: 1.74)", res.TestSpeedup)
	}
}

func TestPolicyCompetitionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	cells, err := RunPolicyCompetition(7, 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4*5 {
		t.Fatalf("cells = %d, want 20", len(cells))
	}
	// Shape 1: every cell must show a speedup ≥ 1 in tests (the cache
	// never adds dataset tests).
	byWorkload := map[string]map[string]float64{}
	for _, c := range cells {
		if c.Speedups.Tests < 1 {
			t.Errorf("%s/%s: test speedup %.2f < 1", c.Workload, c.Policy, c.Speedups.Tests)
		}
		if byWorkload[c.Workload] == nil {
			byWorkload[c.Workload] = map[string]float64{}
		}
		byWorkload[c.Workload][c.Policy] = c.Speedups.Tests
	}
	// Shape 2 (the paper's take-away): HD best or on par — within 10% of
	// the best policy on every workload class.
	for w, ps := range byWorkload {
		best := 0.0
		for _, s := range ps {
			if s > best {
				best = s
			}
		}
		if hd := ps["hd"]; hd < 0.9*best {
			t.Errorf("workload %s: HD %.2f not within 10%% of best %.2f", w, hd, best)
		}
	}
}

func TestFeatureSizeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := RunFeatureSize(11, 300, 150, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: bigger features → bigger index, fewer candidates.
	if res.SpaceRatio <= 1 {
		t.Errorf("space ratio %.2f, want > 1 (paper ≈ 2)", res.SpaceRatio)
	}
	if res.AvgCandidatesBigger > res.AvgCandidatesBase {
		t.Errorf("L+1 candidates %.1f > L candidates %.1f", res.AvgCandidatesBigger, res.AvgCandidatesBase)
	}
}

func TestGCOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := RunGCOverhead(13, 400, 600, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: cache memory a small fraction of the index, large
	// test-count speedup on an affinity-heavy workload.
	if res.MemoryRatio > 0.25 {
		t.Errorf("memory ratio %.3f too large (paper ≈ 0.01)", res.MemoryRatio)
	}
	if res.Speedups.Tests < 1.5 {
		t.Errorf("test speedup %.2f too small for an affinity workload", res.Speedups.Tests)
	}
	if res.HitRate <= 0 {
		t.Error("no hits at all")
	}
}

func TestReplacementDiffers(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	rs, err := RunReplacement(17, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("policies = %d", len(rs))
	}
	// Figure 2(c) shape: each policy evicts (cache was full, a window
	// arrived) and at least two policies differ in their victim sets.
	distinct := map[string]bool{}
	for _, r := range rs {
		if len(r.Evicted) == 0 {
			t.Errorf("%s evicted nothing", r.Policy)
		}
		key := ""
		for _, id := range r.Evicted {
			key += string(rune(id)) + ","
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Error("all policies evicted identical sets")
	}
}

func TestWorkloadRunSteps(t *testing.T) {
	steps, c, err := RunWorkload(19, 10, "hd")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 10 {
		t.Fatalf("steps = %d", len(steps))
	}
	if c.Len() == 0 {
		t.Error("cache empty after run")
	}
	anyHit := false
	for _, s := range steps {
		if s.HitPct < 0 || s.HitPct > 100 {
			t.Errorf("step %d: hit pct %.1f out of range", s.Index, s.HitPct)
		}
		if s.SubHits+s.SuperHits > 0 || s.ExactHit {
			anyHit = true
		}
	}
	if !anyHit {
		t.Error("workload run produced no hits at all")
	}
}

func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	res, err := RunHeadline(23, 200, 400)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedups.Tests <= 1 {
		t.Errorf("aggregate test speedup %.2f, want > 1", res.Speedups.Tests)
	}
	if res.MaxQuerySpeedup < res.Speedups.Tests {
		t.Error("max per-query speedup below aggregate?")
	}
}

func TestComputeSpeedupsEdgeCases(t *testing.T) {
	s := ComputeSpeedups(PassStats{Tests: 100}, PassStats{Tests: 0})
	if s.Tests != 100 {
		t.Errorf("all-saved speedup = %v", s.Tests)
	}
	s = ComputeSpeedups(PassStats{}, PassStats{})
	if s.Tests != 1 || s.Time != 1 {
		t.Errorf("empty speedups = %+v", s)
	}
}
