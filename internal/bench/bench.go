// Package bench implements the experiment runners that regenerate every
// table and figure of the paper's evaluation (see DESIGN.md §4 for the
// per-experiment index). The same runners back `go test -bench` targets in
// the repository root and the cmd/gcbench harness, so numbers in
// EXPERIMENTS.md are reproducible from either entry point.
package bench

import (
	"math/rand"
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

// PassStats summarizes one execution pass (base method or GC) over a
// workload.
type PassStats struct {
	Queries   int
	Tests     int64
	TotalTime time.Duration
}

// AvgTests returns mean sub-iso tests per query.
func (p PassStats) AvgTests() float64 {
	if p.Queries == 0 {
		return 0
	}
	return float64(p.Tests) / float64(p.Queries)
}

// AvgTime returns mean processing time per query.
func (p PassStats) AvgTime() time.Duration {
	if p.Queries == 0 {
		return 0
	}
	return p.TotalTime / time.Duration(p.Queries)
}

// Speedups compares a base pass against a GC pass using the paper's
// definition: average base performance over average GC performance
// (>1 means GC improves).
type Speedups struct {
	Tests float64
	Time  float64
}

// ComputeSpeedups derives the two speedup series.
func ComputeSpeedups(base, gcp PassStats) Speedups {
	s := Speedups{Tests: 1, Time: 1}
	if gcp.Tests > 0 {
		s.Tests = float64(base.Tests) / float64(gcp.Tests)
	} else if base.Tests > 0 {
		s.Tests = float64(base.Tests)
	}
	if gcp.TotalTime > 0 {
		s.Time = float64(base.TotalTime) / float64(gcp.TotalTime)
	}
	return s
}

// RunBasePass executes the workload on the bare Method M.
func RunBasePass(method *ftv.Method, queries []gen.Query) PassStats {
	var p PassStats
	for _, q := range queries {
		r := method.Run(q.G, q.Type)
		p.Queries++
		p.Tests += int64(r.Tests)
		p.TotalTime += r.TotalTime()
	}
	return p
}

// RunGCPass executes the workload through a GraphCache instance.
// The returned PassStats counts dataset sub-iso tests and total processing
// time including cache overheads (filtering, hit detection, verification).
func RunGCPass(c *core.Cache, queries []gen.Query) (PassStats, error) {
	var p PassStats
	for _, q := range queries {
		res, err := c.Execute(q.G, q.Type)
		if err != nil {
			return p, err
		}
		p.Queries++
		p.Tests += int64(res.Tests)
		p.TotalTime += res.TotalTime()
	}
	return p, nil
}

// newRand returns a seeded generator (all bench randomness is explicit).
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// DemoDataset generates the demo deployment's dataset shape: 100 AIDS-like
// molecules (the paper bundles 100 graphs of the AIDS dataset).
func DemoDataset(seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.Molecules(rng, 100, gen.DefaultMoleculeConfig())
}

// MoleculeDataset generates count AIDS-like molecules.
func MoleculeDataset(seed int64, count int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.Molecules(rng, count, gen.DefaultMoleculeConfig())
}

// SocialDataset generates count Barabási–Albert graphs of n vertices.
func SocialDataset(seed int64, count, n int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.BADataset(rng, count, n, 2, 8)
}
