package bench

import (
	"fmt"
	"math/rand"
	"sort"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

// Fig3Result carries the quantities of the paper's Figure 3 — The Query
// Journey: cache hits H/H′, Method M's candidate set C_M, savings S and
// S′, GC's candidate set C, the sub-iso survivors R and the answer set A.
type Fig3Result struct {
	// CachedQueries is the number of warmed cache entries (paper: 50).
	CachedQueries int
	// SubHits and SuperHits are |H| and |H′| (paper: 1 and 3).
	SubHits, SuperHits int
	// CM is |C_M| (paper: 75).
	CM int
	// S and SPrime are |S| and |S′|.
	S, SPrime int
	// C is |C| after pruning (paper: 43).
	C int
	// R is |R|, verification survivors (paper: 14).
	R int
	// A is |A| = |R ∪ S| (paper: 15).
	A int
	// TestSpeedup is C_M/C (paper: 75/43 = 1.74).
	TestSpeedup float64
	// SureIDs lists the S members (the "graph id 46" of Figure 3(c)).
	SureIDs []int
	// AnswerIDs lists the final answers.
	AnswerIDs []int
}

// RunFig3 reproduces The Query Journey: a 100-molecule dataset, Method M
// = GGSX(L=3)+VF2, a cache warmed with 50 executed queries, then one probe
// query constructed (as in the demo) to enjoy both sub-case and super-case
// hits. Deterministic in seed.
func RunFig3(seed int64) (*Fig3Result, error) {
	rng := rand.New(rand.NewSource(seed))
	dataset := DemoDataset(seed)
	method := ftv.NewGGSXMethod(dataset, 3)

	cfg := core.DefaultConfig()
	cfg.Shards = 1 // sequential reproduction: independent of sharding and window engine
	cfg.Capacity = 50
	cfg.Window = 10
	cfg.SelfCheck = true
	c, err := core.New(method, cfg)
	if err != nil {
		return nil, err
	}

	// The probe pattern and its relatives: one cached query contains the
	// probe (sub-case hit), several cached queries are contained in it
	// (super-case hits). The paper's walk-through uses a probe with a
	// large candidate set but a small answer set (|C_M| = 75, |A| = 15 of
	// 100): the filter passes most graphs, verification rejects most —
	// exactly the gap cache hits harvest. Search extraction attempts for a
	// probe maximizing that gap.
	var big, probe *graph.Graph
	bestGap := -1
	for attempt := 0; attempt < 60; attempt++ {
		src := dataset[rng.Intn(len(dataset))]
		b := gen.ExtractConnectedSubgraph(rng, src, 12)
		p := gen.ExtractConnectedSubgraph(rng, b, 6)
		if p.N() >= b.N() { // degenerate extraction; need probe ⊊ big
			continue
		}
		r := method.Run(p, ftv.Subgraph)
		ans := r.Answers.Count()
		if ans == 0 {
			continue
		}
		if gap := r.CandidateCount - ans; gap > bestGap {
			bestGap, big, probe = gap, b, p
		}
		if bestGap >= len(dataset)/2 {
			break
		}
	}
	if probe == nil {
		return nil, fmt.Errorf("bench: no suitable probe found for seed %d", seed)
	}
	// Super-case suppliers: nearly-probe-sized sub-patterns, picked for
	// selectivity — the smaller their answer sets, the more candidates
	// they exclude (a 1-edge pattern would match everything and prune
	// nothing). Draw several and keep the three most selective.
	type scored struct {
		g   *graph.Graph
		ans int
	}
	var candidates []scored
	for i := 0; i < 10; i++ {
		s := gen.ExtractConnectedSubgraph(rng, probe, probe.M()-1-i%2)
		if s.M() < probe.M() && !iso.Isomorphic(s, probe) {
			candidates = append(candidates, scored{s, method.Run(s, ftv.Subgraph).Answers.Count()})
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].ans < candidates[j].ans })
	if len(candidates) > 3 {
		candidates = candidates[:3]
	}
	smalls := make([]*graph.Graph, len(candidates))
	for i, c := range candidates {
		smalls[i] = c.g
	}

	// Warm the cache with 50 executed queries: the 4 relatives plus 46
	// fillers drawn from the dataset at large. Fillers isomorphic to the
	// probe are skipped — the journey demonstrates sub/super hits, not the
	// (separately benched) exact-match path.
	warm := []*graph.Graph{big}
	warm = append(warm, smalls...)
	for len(warm) < 50 {
		g := dataset[rng.Intn(len(dataset))]
		f := gen.ExtractConnectedSubgraph(rng, g, 3+rng.Intn(10))
		if iso.Isomorphic(f, probe) {
			continue
		}
		warm = append(warm, f)
	}
	rng.Shuffle(len(warm), func(i, j int) { warm[i], warm[j] = warm[j], warm[i] })
	for _, w := range warm {
		if _, err := c.Execute(w, ftv.Subgraph); err != nil {
			return nil, err
		}
	}

	res, err := c.Execute(probe, ftv.Subgraph)
	if err != nil {
		return nil, err
	}
	if res.ExactHit {
		return nil, fmt.Errorf("bench: probe collided with a warm query (seed %d); use another seed", seed)
	}
	return &Fig3Result{
		CachedQueries: c.Len(),
		SubHits:       res.SubHitCount(),
		SuperHits:     res.SuperHitCount(),
		CM:            res.BaseCandidates,
		S:             res.Sure.Count(),
		SPrime:        res.Excluded.Count(),
		C:             res.Candidates,
		R:             res.Survivors.Count(),
		A:             res.Answers.Count(),
		TestSpeedup:   res.TestSpeedup(),
		SureIDs:       res.Sure.Indices(),
		AnswerIDs:     res.Answers.Indices(),
	}, nil
}
