//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. Wall-clock
// throughput assertions are meaningless under its scheduling distortion.
const raceEnabled = true
