package bench

import (
	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

// PolicyCell is one cell of the EXP-I policy-competition grid: one
// workload class crossed with one replacement policy.
type PolicyCell struct {
	Workload string
	Policy   string
	Speedups Speedups
	// HitRate is (exact+sub+super hit queries)/queries.
	HitRate float64
}

// PolicyWorkloads names the EXP-I workload classes. Each stresses a
// different utility signal so no single policy can dominate:
//
//   - zipf-chain: skewed popularity + containment chains (PIN's home turf)
//   - uniform-chain: containment without popularity skew (LRU suffers)
//   - zipf-flat: repeats without containment (POP/LRU do fine)
//   - costskew-chain: heterogeneous graph sizes so saved tests differ
//     wildly in price (PINC's home turf)
func PolicyWorkloads() []string {
	return []string{"zipf-chain", "uniform-chain", "zipf-flat", "costskew-chain"}
}

// policyGridSpec builds dataset + workload for a named class.
func policyGridSpec(name string, seed int64, queries int) ([]*graph.Graph, []gen.Query, error) {
	var dataset []*graph.Graph
	// Pool ≈ 3× the cache capacity used below, so replacement decisions
	// actually matter (a pool that fits entirely in cache saturates every
	// policy at the same hit rate).
	cfg := gen.WorkloadConfig{
		Size: queries, Type: ftv.Subgraph, PoolSize: 150,
		ChainLen: 3, MinEdges: 3, MaxEdges: 14,
	}
	switch name {
	case "zipf-chain":
		dataset = MoleculeDataset(seed, 200)
		cfg.ZipfS, cfg.ChainFrac = 1.2, 0.6
	case "uniform-chain":
		dataset = MoleculeDataset(seed+1, 200)
		cfg.ZipfS, cfg.ChainFrac = 0, 0.7
	case "zipf-flat":
		dataset = MoleculeDataset(seed+2, 200)
		cfg.ZipfS, cfg.ChainFrac = 1.4, 0
	case "costskew-chain":
		// Mix two molecule size classes: verification against the large
		// ones costs an order of magnitude more, separating PIN from PINC.
		rng := newRand(seed + 3)
		small := gen.Molecules(rng, 120, gen.MoleculeConfig{MinV: 12, MaxV: 20, RingFrac: 0.08, MaxDegree: 4, Labels: 12})
		large := gen.Molecules(rng, 80, gen.MoleculeConfig{MinV: 70, MaxV: 110, RingFrac: 0.08, MaxDegree: 4, Labels: 12})
		dataset = gen.AssignIDs(append(small, large...))
		cfg.ZipfS, cfg.ChainFrac = 1.2, 0.5
		cfg.MaxEdges = 10
	default:
		dataset = MoleculeDataset(seed, 200)
		cfg.ZipfS, cfg.ChainFrac = 1.2, 0.5
	}
	w, err := gen.NewWorkload(newRand(seed+100), dataset, cfg)
	if err != nil {
		return nil, nil, err
	}
	return dataset, w.Queries, nil
}

// RunPolicyCompetition reproduces EXP-I (§3.1.I): for every workload class
// and every policy, the speedup of GC over the base method. The take-away
// shape to verify: different policies lead on different classes, while HD
// is best or on par everywhere.
func RunPolicyCompetition(seed int64, queries int, policies []string) ([]PolicyCell, error) {
	if len(policies) == 0 {
		policies = []string{"lru", "pop", "pin", "pinc", "hd"}
	}
	var cells []PolicyCell
	for _, wname := range PolicyWorkloads() {
		dataset, qs, err := policyGridSpec(wname, seed, queries)
		if err != nil {
			return nil, err
		}
		method := ftv.NewGGSXMethod(dataset, 3)
		base := RunBasePass(method, qs)

		for _, pname := range policies {
			policy, err := core.NewPolicy(pname)
			if err != nil {
				return nil, err
			}
			cfg := core.DefaultConfig()
			cfg.Shards = 1 // sequential reproduction: independent of sharding and window engine
			cfg.Capacity = 50
			cfg.Window = 10
			cfg.Policy = policy
			c, err := core.New(method, cfg)
			if err != nil {
				return nil, err
			}
			gcp, err := RunGCPass(c, qs)
			if err != nil {
				return nil, err
			}
			snap := c.Stats()
			hitQueries := snap.ExactHits + snap.SubHitQueries + snap.SuperHitQueries
			cells = append(cells, PolicyCell{
				Workload: wname,
				Policy:   pname,
				Speedups: ComputeSpeedups(base, gcp),
				HitRate:  float64(hitQueries) / float64(snap.Queries),
			})
		}
	}
	return cells, nil
}
