package bench

import (
	"fmt"
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// ThroughputPoint is one measured configuration of the parallel-throughput
// experiment: a worker count driving a cache engine, and the resulting
// queries/sec.
type ThroughputPoint struct {
	Workers int
	Queries int
	Elapsed time.Duration
	QPS     float64
}

// ThroughputComparison reports the three engines over the identical mixed
// workload at each worker count: the serialized single-lock baseline, the
// lock-striped kernel with the SHARED admission window (every miss
// funnels into one coordinator-guarded buffer — the PR-2 engine), and the
// default per-shard-window kernel, where no per-query code path takes a
// global mutex.
type ThroughputComparison struct {
	WorkerCounts []int
	// Serialized drives a Config{Shards: 1, Serialized: true} cache — the
	// pre-sharding engine that takes one global lock per query.
	Serialized []ThroughputPoint
	// SharedWindow drives the lock-striped engine with
	// Config.SharedWindow: sharded queries, but one global admission
	// window whose turns stop the world.
	SharedWindow []ThroughputPoint
	// PerShard drives the default engine: per-shard admission windows and
	// per-shard window turns.
	PerShard []ThroughputPoint
}

// SpeedupAt returns per-shard-window QPS over serialized QPS at the given
// worker count (>1 means the decentralized engine wins); 0 if the count
// was not run.
func (t *ThroughputComparison) SpeedupAt(workers int) float64 {
	for i, w := range t.WorkerCounts {
		if w == workers && t.Serialized[i].QPS > 0 {
			return t.PerShard[i].QPS / t.Serialized[i].QPS
		}
	}
	return 0
}

// WindowSpeedupAt returns per-shard-window QPS over shared-window QPS at
// the given worker count — the admission-decentralization payoff in
// isolation (both engines shard the entries; only the window differs); 0
// if the count was not run.
func (t *ThroughputComparison) WindowSpeedupAt(workers int) float64 {
	for i, w := range t.WorkerCounts {
		if w == workers && t.SharedWindow[i].QPS > 0 {
			return t.PerShard[i].QPS / t.SharedWindow[i].QPS
		}
	}
	return 0
}

// DefaultThroughputWorkers are the worker counts the throughput experiment
// reports: the sequential floor, a small pool, and the target scale.
func DefaultThroughputWorkers() []int { return []int{1, 4, 8} }

// throughputRounds is how many times each (engine, workers) cell is
// measured; the best round is reported. The engines differ by a few
// percent while container scheduling jitters by more, so single-shot
// numbers flip orderings run to run — the per-engine best is stable.
const throughputRounds = 5

// ParallelThroughput measures end-to-end queries/sec of the per-shard-
// window engine against the shared-window and serialized baselines. One
// dataset, one GGSX index and one mixed subgraph/supergraph workload are
// generated up front and shared by every run (the filter index is
// immutable and concurrency-safe); each (engine, workers) cell gets a
// fresh cache so no run warms another. The workload is submitted through
// Cache.ExecuteAll with the cell's worker count.
func ParallelThroughput(seed int64, datasetSize, queries int, workerCounts []int) (*ThroughputComparison, error) {
	if len(workerCounts) == 0 {
		workerCounts = DefaultThroughputWorkers()
	}
	dataset := MoleculeDataset(seed, datasetSize)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gen.NewWorkload(newRand(seed+7), dataset, gen.WorkloadConfig{
		Size: queries, Mixed: true, PoolSize: max(queries/3, 8),
		ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, err
	}
	reqs := make([]core.Request, len(w.Queries))
	for i, q := range w.Queries {
		reqs[i] = core.Request{Graph: q.G, Type: q.Type}
	}

	cmp := &ThroughputComparison{WorkerCounts: workerCounts}
	runOnce := func(cfg core.Config, workers int) (ThroughputPoint, error) {
		c, err := core.New(method, cfg)
		if err != nil {
			return ThroughputPoint{}, err
		}
		t0 := time.Now()
		outs := c.ExecuteAll(reqs, workers)
		elapsed := time.Since(t0)
		for i, o := range outs {
			if o.Err != nil {
				return ThroughputPoint{}, fmt.Errorf("query %d: %w", i, o.Err)
			}
		}
		return ThroughputPoint{
			Workers: workers,
			Queries: len(reqs),
			Elapsed: elapsed,
			QPS:     float64(len(reqs)) / elapsed.Seconds(),
		}, nil
	}

	serialCfg := core.DefaultConfig()
	serialCfg.Shards = 1
	serialCfg.Serialized = true
	sharedCfg := core.DefaultConfig()
	sharedCfg.SharedWindow = true
	perShardCfg := core.DefaultConfig()

	for _, workers := range workerCounts {
		// The three engines are measured in interleaved, rotating rounds
		// — a fresh cache per run so no run warms another — and each cell
		// reports its best round, after one unmeasured warmup pass per
		// engine. Background load drifts on timescales longer than one
		// round and the first pass pays one-time costs (page faults, heap
		// growth), so rotation plus warmup exposes every engine to the
		// same conditions instead of letting the measurement order decide
		// comparisons that are within a few percent.
		var serial, shared, perShard ThroughputPoint
		cells := []struct {
			cfg  core.Config
			best *ThroughputPoint
		}{{serialCfg, &serial}, {sharedCfg, &shared}, {perShardCfg, &perShard}}
		for r := -1; r < throughputRounds; r++ {
			for i := range cells {
				cell := cells[(i+r+len(cells))%len(cells)]
				p, err := runOnce(cell.cfg, workers)
				if err != nil {
					return nil, err
				}
				if r >= 0 && p.QPS > cell.best.QPS {
					*cell.best = p
				}
			}
		}
		cmp.Serialized = append(cmp.Serialized, serial)
		cmp.SharedWindow = append(cmp.SharedWindow, shared)
		cmp.PerShard = append(cmp.PerShard, perShard)
	}
	return cmp, nil
}
