package bench

import (
	"fmt"
	"runtime"
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// ThroughputPoint is one measured configuration of the parallel-throughput
// experiment: a worker count driving a cache engine, and the resulting
// queries/sec.
type ThroughputPoint struct {
	Workers int
	Queries int
	Elapsed time.Duration
	QPS     float64
}

// ThroughputComparison reports the three engines over the identical mixed
// workload at each worker count: the serialized single-lock baseline, the
// lock-striped kernel with the SHARED admission window (every miss
// funnels into one coordinator-guarded buffer — the PR-2 engine), and the
// default per-shard-window kernel, where no per-query code path takes a
// global mutex.
type ThroughputComparison struct {
	// Tier names the workload tier that was run; DatasetSize and Queries
	// record its realized scale so the JSON artifact is self-describing.
	Tier         string
	DatasetSize  int
	Queries      int
	WorkerCounts []int
	// Serialized drives a Config{Shards: 1, Serialized: true} cache — the
	// pre-sharding engine that takes one global lock per query.
	Serialized []ThroughputPoint
	// SharedWindow drives the lock-striped engine with
	// Config.SharedWindow: sharded queries, but one global admission
	// window whose turns stop the world.
	SharedWindow []ThroughputPoint
	// PerShard drives the default engine: per-shard admission windows and
	// per-shard window turns.
	PerShard []ThroughputPoint
}

// SpeedupAt returns per-shard-window QPS over serialized QPS at the given
// worker count (>1 means the decentralized engine wins); 0 if the count
// was not run.
func (t *ThroughputComparison) SpeedupAt(workers int) float64 {
	for i, w := range t.WorkerCounts {
		if w == workers && t.Serialized[i].QPS > 0 {
			return t.PerShard[i].QPS / t.Serialized[i].QPS
		}
	}
	return 0
}

// WindowSpeedupAt returns per-shard-window QPS over shared-window QPS at
// the given worker count — the admission-decentralization payoff in
// isolation (both engines shard the entries; only the window differs); 0
// if the count was not run.
func (t *ThroughputComparison) WindowSpeedupAt(workers int) float64 {
	for i, w := range t.WorkerCounts {
		if w == workers && t.SharedWindow[i].QPS > 0 {
			return t.PerShard[i].QPS / t.SharedWindow[i].QPS
		}
	}
	return 0
}

// Environment records the runtime context a benchmark ran under, so a
// committed BENCH artifact states how much hardware parallelism its
// scaling numbers could possibly show (a 1-CPU container can only ever
// report a flat sweep).
type Environment struct {
	GOMAXPROCS int
	NumCPU     int
	GoVersion  string
	Race       bool
}

// CaptureEnvironment snapshots the current runtime environment.
func CaptureEnvironment() Environment {
	return Environment{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Race:       raceEnabled,
	}
}

// DefaultThroughputWorkers are the worker counts the throughput
// experiment sweeps: the sequential floor, then powers of two up to and
// including GOMAXPROCS — the scale the hardware can actually run.
// Hard-coding counts past GOMAXPROCS only measures scheduler thrash, and
// stopping short of it hides the top of the scaling curve; deriving the
// sweep keeps the committed BENCH artifacts honest about the machine
// they ran on (the environment block records GOMAXPROCS alongside).
func DefaultThroughputWorkers() []int {
	maxW := runtime.GOMAXPROCS(0)
	ws := []int{1}
	for w := 2; w < maxW; w *= 2 {
		ws = append(ws, w)
	}
	if maxW > 1 {
		ws = append(ws, maxW)
	}
	return ws
}

// ThroughputTier is one named workload scale for the parallel-throughput
// experiment. The default tier is the historical bench-smoke scale; the
// large tier exists because small workloads hide parallel wins — with a
// few hundred queries, cache construction and fixed costs dominate and
// every engine measures the same (ROADMAP open item 1).
type ThroughputTier struct {
	// Name tags the tier in reports and JSON artifacts.
	Name string
	// DatasetSize and Queries set the workload scale.
	DatasetSize int
	Queries     int
	// PoolSize is the number of distinct queries; the workload draws
	// Queries zipf-skewed repeats from this pool, so Queries-PoolSize
	// executions exercise the hit paths.
	PoolSize int
	// ZipfS is the skew of the repeat distribution (>1; higher = more
	// head-heavy).
	ZipfS float64
	// Rounds is how many measured rounds each (engine, workers) cell
	// gets (best-of, after one unmeasured warmup).
	Rounds int
}

// DefaultTier is the historical throughput workload: small enough for
// the CI smoke gates, interleaved best-of-5 rounds.
func DefaultTier() ThroughputTier {
	return ThroughputTier{Name: "default", DatasetSize: 200, Queries: 1000, PoolSize: 333, ZipfS: 1.2, Rounds: 5}
}

// LargeTier is the scaling workload: 10k dataset graphs and 10k
// zipf-skewed mixed queries from a 1k-query pool, so the run spends its
// time in the concurrent query paths (hit detection, verification,
// admission) rather than in fixed setup. Rounds drop to best-of-2 —
// each round is long enough to average out scheduling jitter on its
// own.
func LargeTier() ThroughputTier {
	return ThroughputTier{Name: "large", DatasetSize: 10000, Queries: 10000, PoolSize: 1000, ZipfS: 1.1, Rounds: 2}
}

// TierByName resolves a -scale flag value.
func TierByName(name string) (ThroughputTier, error) {
	switch name {
	case "", "default":
		return DefaultTier(), nil
	case "large":
		return LargeTier(), nil
	}
	return ThroughputTier{}, fmt.Errorf("unknown workload tier %q (want default or large)", name)
}

// ParallelThroughput measures the default tier at the given scale — the
// historical entry point; see ParallelThroughputTier.
func ParallelThroughput(seed int64, datasetSize, queries int, workerCounts []int) (*ThroughputComparison, error) {
	tier := DefaultTier()
	tier.DatasetSize = datasetSize
	tier.Queries = queries
	tier.PoolSize = max(queries/3, 8)
	return ParallelThroughputTier(seed, tier, workerCounts)
}

// ParallelThroughputTier measures end-to-end queries/sec of the
// per-shard-window engine against the shared-window and serialized
// baselines on one workload tier. One dataset, one GGSX index and one
// mixed subgraph/supergraph workload are generated up front and shared
// by every run (the filter index is immutable and concurrency-safe);
// each (engine, workers) cell gets a fresh cache so no run warms
// another. The workload is submitted through Cache.ExecuteAll with the
// cell's worker count.
func ParallelThroughputTier(seed int64, tier ThroughputTier, workerCounts []int) (*ThroughputComparison, error) {
	if len(workerCounts) == 0 {
		workerCounts = DefaultThroughputWorkers()
	}
	if tier.Rounds < 1 {
		tier.Rounds = 1
	}
	dataset := MoleculeDataset(seed, tier.DatasetSize)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gen.NewWorkload(newRand(seed+7), dataset, gen.WorkloadConfig{
		Size: tier.Queries, Mixed: true, PoolSize: max(tier.PoolSize, 8),
		ZipfS: tier.ZipfS, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, err
	}
	reqs := make([]core.Request, len(w.Queries))
	for i, q := range w.Queries {
		reqs[i] = core.Request{Graph: q.G, Type: q.Type}
	}

	cmp := &ThroughputComparison{
		Tier:         tier.Name,
		DatasetSize:  tier.DatasetSize,
		Queries:      tier.Queries,
		WorkerCounts: workerCounts,
	}
	runOnce := func(cfg core.Config, workers int) (ThroughputPoint, error) {
		c, err := core.New(method, cfg)
		if err != nil {
			return ThroughputPoint{}, err
		}
		t0 := time.Now()
		outs := c.ExecuteAll(reqs, workers)
		elapsed := time.Since(t0)
		for i, o := range outs {
			if o.Err != nil {
				return ThroughputPoint{}, fmt.Errorf("query %d: %w", i, o.Err)
			}
		}
		return ThroughputPoint{
			Workers: workers,
			Queries: len(reqs),
			Elapsed: elapsed,
			QPS:     float64(len(reqs)) / elapsed.Seconds(),
		}, nil
	}

	serialCfg := core.DefaultConfig()
	serialCfg.Shards = 1
	serialCfg.Serialized = true
	sharedCfg := core.DefaultConfig()
	sharedCfg.SharedWindow = true
	perShardCfg := core.DefaultConfig()

	for _, workers := range workerCounts {
		// The three engines are measured in interleaved, rotating rounds
		// — a fresh cache per run so no run warms another — and each cell
		// reports its best round, after one unmeasured warmup pass per
		// engine. Background load drifts on timescales longer than one
		// round and the first pass pays one-time costs (page faults, heap
		// growth), so rotation plus warmup exposes every engine to the
		// same conditions instead of letting the measurement order decide
		// comparisons that are within a few percent.
		var serial, shared, perShard ThroughputPoint
		cells := []struct {
			cfg  core.Config
			best *ThroughputPoint
		}{{serialCfg, &serial}, {sharedCfg, &shared}, {perShardCfg, &perShard}}
		for r := -1; r < tier.Rounds; r++ {
			for i := range cells {
				cell := cells[(i+r+len(cells))%len(cells)]
				p, err := runOnce(cell.cfg, workers)
				if err != nil {
					return nil, err
				}
				if r >= 0 && p.QPS > cell.best.QPS {
					*cell.best = p
				}
			}
		}
		cmp.Serialized = append(cmp.Serialized, serial)
		cmp.SharedWindow = append(cmp.SharedWindow, shared)
		cmp.PerShard = append(cmp.PerShard, perShard)
	}
	return cmp, nil
}
