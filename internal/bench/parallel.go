package bench

import (
	"fmt"
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// ThroughputPoint is one measured configuration of the parallel-throughput
// experiment: a worker count driving a cache engine, and the resulting
// queries/sec.
type ThroughputPoint struct {
	Workers int
	Queries int
	Elapsed time.Duration
	QPS     float64
}

// ThroughputComparison reports the sharded engine against the serialized
// baseline over the identical mixed workload at each worker count.
type ThroughputComparison struct {
	WorkerCounts []int
	// Serialized drives a Config{Shards: 1, Serialized: true} cache — the
	// pre-sharding engine that takes one global lock per query.
	Serialized []ThroughputPoint
	// Sharded drives the lock-striped engine at the default shard count.
	Sharded []ThroughputPoint
}

// SpeedupAt returns sharded QPS over serialized QPS at the given worker
// count (>1 means the sharded engine wins); 0 if the count was not run.
func (t *ThroughputComparison) SpeedupAt(workers int) float64 {
	for i, w := range t.WorkerCounts {
		if w == workers && t.Serialized[i].QPS > 0 {
			return t.Sharded[i].QPS / t.Serialized[i].QPS
		}
	}
	return 0
}

// DefaultThroughputWorkers are the worker counts the throughput experiment
// reports: the sequential floor, a small pool, and the target scale.
func DefaultThroughputWorkers() []int { return []int{1, 4, 8} }

// ParallelThroughput measures end-to-end queries/sec of the sharded engine
// against the serialized baseline. One dataset, one GGSX index and one
// mixed subgraph/supergraph workload are generated up front and shared by
// every run (the filter index is immutable and concurrency-safe); each
// (engine, workers) cell gets a fresh cache so no run warms another. The
// workload is submitted through Cache.ExecuteAll with the cell's worker
// count.
func ParallelThroughput(seed int64, datasetSize, queries int, workerCounts []int) (*ThroughputComparison, error) {
	if len(workerCounts) == 0 {
		workerCounts = DefaultThroughputWorkers()
	}
	dataset := MoleculeDataset(seed, datasetSize)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gen.NewWorkload(newRand(seed+7), dataset, gen.WorkloadConfig{
		Size: queries, Mixed: true, PoolSize: max(queries/3, 8),
		ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, err
	}
	reqs := make([]core.Request, len(w.Queries))
	for i, q := range w.Queries {
		reqs[i] = core.Request{Graph: q.G, Type: q.Type}
	}

	cmp := &ThroughputComparison{WorkerCounts: workerCounts}
	run := func(cfg core.Config, workers int) (ThroughputPoint, error) {
		c, err := core.New(method, cfg)
		if err != nil {
			return ThroughputPoint{}, err
		}
		t0 := time.Now()
		outs := c.ExecuteAll(reqs, workers)
		elapsed := time.Since(t0)
		for i, o := range outs {
			if o.Err != nil {
				return ThroughputPoint{}, fmt.Errorf("query %d: %w", i, o.Err)
			}
		}
		return ThroughputPoint{
			Workers: workers,
			Queries: len(reqs),
			Elapsed: elapsed,
			QPS:     float64(len(reqs)) / elapsed.Seconds(),
		}, nil
	}

	for _, workers := range workerCounts {
		serialCfg := core.DefaultConfig()
		serialCfg.Shards = 1
		serialCfg.Serialized = true
		p, err := run(serialCfg, workers)
		if err != nil {
			return nil, err
		}
		cmp.Serialized = append(cmp.Serialized, p)

		shardCfg := core.DefaultConfig()
		p, err = run(shardCfg, workers)
		if err != nil {
			return nil, err
		}
		cmp.Sharded = append(cmp.Sharded, p)
	}
	return cmp, nil
}
