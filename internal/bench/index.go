package bench

import (
	"fmt"
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// IndexComparison is the indexed-vs-unindexed hit-detection experiment:
// the identical mixed workload driven sequentially through two caches that
// differ only in Config.IndexOff, under the timing-independent PIN policy
// so both runs are exactly reproducible. Answers are cross-checked
// query-by-query (they must be byte-identical — the index only discards
// provable non-hits); the returned snapshots expose what the index saves:
// dominance merges (HitFullChecks), cache-side iso tests
// (HitDetectionTests) and the pruned-entry count (HitIndexPruned).
type IndexComparison struct {
	Queries                          int
	Indexed                          core.Snapshot
	Unindexed                        core.Snapshot
	IndexedElapsed, UnindexedElapsed time.Duration
}

// Reduced reports whether the index did strictly less hit-detection work
// than the baseline without running more iso tests — the smoke-check
// asserted by `make bench-smoke`.
func (c *IndexComparison) Reduced() bool {
	return c.Indexed.HitIndexPruned > 0 &&
		c.Indexed.HitFullChecks < c.Unindexed.HitFullChecks &&
		c.Indexed.HitDetectionTests <= c.Unindexed.HitDetectionTests
}

// RunIndexComparison generates a mixed subgraph/supergraph workload over a
// molecule dataset and measures both engines.
func RunIndexComparison(seed int64, datasetSize, queries int) (*IndexComparison, error) {
	dataset := MoleculeDataset(seed, datasetSize)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gen.NewWorkload(newRand(seed+13), dataset, gen.WorkloadConfig{
		Size: queries, Mixed: true, PoolSize: max(queries/3, 8),
		ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, err
	}

	run := func(indexOff bool) (core.Snapshot, []string, time.Duration, error) {
		p, err := core.NewPolicy("pin")
		if err != nil {
			return core.Snapshot{}, nil, 0, err
		}
		cfg := core.DefaultConfig()
		cfg.Shards = 1 // sequential reproduction: independent of sharding and window engine
		cfg.Policy = p
		cfg.IndexOff = indexOff
		c, err := core.New(method, cfg)
		if err != nil {
			return core.Snapshot{}, nil, 0, err
		}
		answers := make([]string, 0, len(w.Queries))
		t0 := time.Now()
		for i, q := range w.Queries {
			res, err := c.Execute(q.G, q.Type)
			if err != nil {
				return core.Snapshot{}, nil, 0, fmt.Errorf("query %d: %w", i, err)
			}
			answers = append(answers, res.Answers.String())
		}
		return c.Stats(), answers, time.Since(t0), nil
	}

	unindexed, baseAnswers, baseElapsed, err := run(true)
	if err != nil {
		return nil, err
	}
	indexed, idxAnswers, idxElapsed, err := run(false)
	if err != nil {
		return nil, err
	}
	for i := range baseAnswers {
		if baseAnswers[i] != idxAnswers[i] {
			return nil, fmt.Errorf("query %d: indexed and unindexed answers diverge — kernel bug", i)
		}
	}
	return &IndexComparison{
		Queries:          len(w.Queries),
		Indexed:          indexed,
		Unindexed:        unindexed,
		IndexedElapsed:   idxElapsed,
		UnindexedElapsed: baseElapsed,
	}, nil
}
