package bench

import (
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// FeatureSizeResult is EXP-II-A: the speedup-versus-overhead trade of
// growing the FTV index's feature size by one (§3.1.II). The paper reports
// ≈ −10% query time for ≈ ×2 index space.
type FeatureSizeResult struct {
	BaseLen, BiggerLen int
	// IndexBytesBase/Bigger are the two index footprints.
	IndexBytesBase, IndexBytesBigger int
	// SpaceRatio = bigger/base (paper: ≈ 2).
	SpaceRatio float64
	// AvgTimeBase/Bigger are mean per-query times.
	AvgTimeBase, AvgTimeBigger time.Duration
	// TimeReduction = 1 − bigger/base (paper: ≈ 0.10).
	TimeReduction float64
	// AvgCandidatesBase/Bigger are mean |C_M| per query.
	AvgCandidatesBase, AvgCandidatesBigger float64
}

// RunFeatureSize measures GGSX with path length L versus L+1 over a
// molecule dataset, no cache involved.
func RunFeatureSize(seed int64, datasetSize, queries, baseLen int) (*FeatureSizeResult, error) {
	dataset := MoleculeDataset(seed, datasetSize)
	w, err := gen.NewWorkload(newRand(seed+7), dataset, gen.WorkloadConfig{
		Size: queries, Type: ftv.Subgraph, PoolSize: queries,
		ZipfS: 0, ChainFrac: 0, ChainLen: 2, MinEdges: 4, MaxEdges: 12,
	})
	if err != nil {
		return nil, err
	}

	mBase := ftv.NewGGSXMethod(dataset, baseLen)
	mBig := ftv.NewGGSXMethod(dataset, baseLen+1)

	var statsBase, statsBig PassStats
	var candBase, candBig int64
	for _, q := range w.Queries {
		rb := mBase.Run(q.G, q.Type)
		statsBase.Queries++
		statsBase.Tests += int64(rb.Tests)
		statsBase.TotalTime += rb.TotalTime()
		candBase += int64(rb.CandidateCount)

		rg := mBig.Run(q.G, q.Type)
		statsBig.Queries++
		statsBig.Tests += int64(rg.Tests)
		statsBig.TotalTime += rg.TotalTime()
		candBig += int64(rg.CandidateCount)
	}

	out := &FeatureSizeResult{
		BaseLen:             baseLen,
		BiggerLen:           baseLen + 1,
		IndexBytesBase:      mBase.Filter().IndexBytes(),
		IndexBytesBigger:    mBig.Filter().IndexBytes(),
		AvgTimeBase:         statsBase.AvgTime(),
		AvgTimeBigger:       statsBig.AvgTime(),
		AvgCandidatesBase:   float64(candBase) / float64(queries),
		AvgCandidatesBigger: float64(candBig) / float64(queries),
	}
	if out.IndexBytesBase > 0 {
		out.SpaceRatio = float64(out.IndexBytesBigger) / float64(out.IndexBytesBase)
	}
	if statsBase.TotalTime > 0 {
		out.TimeReduction = 1 - float64(statsBig.TotalTime)/float64(statsBase.TotalTime)
	}
	return out, nil
}

// GCOverheadResult is EXP-II-B: GC's memory footprint relative to the FTV
// index, against the speedup it buys (paper: ≈1% of index space, query
// speedups up to 40×).
type GCOverheadResult struct {
	IndexBytes int
	CacheBytes int
	// MemoryRatio = cache/index (paper: ≈ 0.01 for AIDS).
	MemoryRatio float64
	Speedups    Speedups
	HitRate     float64
}

// RunGCOverhead executes a repeat/containment-heavy workload over GGSX
// with and without GC and reports the space-for-speed trade.
func RunGCOverhead(seed int64, datasetSize, queries, cacheCap int) (*GCOverheadResult, error) {
	dataset := MoleculeDataset(seed, datasetSize)
	w, err := gen.NewWorkload(newRand(seed+13), dataset, gen.WorkloadConfig{
		Size: queries, Type: ftv.Subgraph, PoolSize: cacheCap,
		ZipfS: 1.4, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, err
	}
	method := ftv.NewGGSXMethod(dataset, 4)
	base := RunBasePass(method, w.Queries)

	cfg := core.DefaultConfig()
	cfg.Shards = 1 // sequential reproduction: independent of sharding and window engine
	cfg.Capacity = cacheCap
	cfg.Window = 10
	c, err := core.New(method, cfg)
	if err != nil {
		return nil, err
	}
	gcp, err := RunGCPass(c, w.Queries)
	if err != nil {
		return nil, err
	}
	snap := c.Stats()
	hitQueries := snap.ExactHits + snap.SubHitQueries + snap.SuperHitQueries
	out := &GCOverheadResult{
		IndexBytes: method.Filter().IndexBytes(),
		CacheBytes: c.Bytes(),
		Speedups:   ComputeSpeedups(base, gcp),
		HitRate:    float64(hitQueries) / float64(snap.Queries),
	}
	if out.IndexBytes > 0 {
		out.MemoryRatio = float64(out.CacheBytes) / float64(out.IndexBytes)
	}
	return out, nil
}
