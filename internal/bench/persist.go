package bench

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// PersistResult is EXP-PERSIST: snapshot save/restore cost of the binary
// GCS3 format against the v2 text format over the same warmed cache —
// wall time for save, eager restore and (v3 only) lazy restore, plus the
// on-disk footprint of each encoding. Ratios are stored, not derived, so
// the struct serializes whole into the bench-json artifact.
type PersistResult struct {
	Tier        string
	DatasetSize int
	Queries     int
	// Entries is the resident entry count the snapshots capture.
	Entries int
	// V2Bytes / V3Bytes are the serialized sizes. V3 stays close to v2 on
	// molecule workloads (both inherit the adaptive containers' compression
	// — v2 as index lists, v3 as the native binary containers); the v3 win
	// is restore time, not bytes.
	V2Bytes int
	V3Bytes int
	// Save / eager-restore / lazy-restore wall times, best of three.
	// V3LazyRestoreMs covers RestoreStateLazy end to end (open + mmap +
	// header/index/graph validation) — the time to first-query readiness,
	// with every answer body still on disk.
	V2SaveMs        float64
	V3SaveMs        float64
	V2RestoreMs     float64
	V3RestoreMs     float64
	V3LazyRestoreMs float64
	// RestoreSpeedup is V2RestoreMs/V3RestoreMs; LazySpeedup is
	// V2RestoreMs/V3LazyRestoreMs (how much sooner a rebooted daemon
	// serves its first query).
	RestoreSpeedup float64
	LazySpeedup    float64
}

// bestOf runs fn n times and returns the fastest wall time in
// milliseconds.
func bestOf(n int, fn func() error) (float64, error) {
	best := 0.0
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if ms := float64(time.Since(start).Microseconds()) / 1000; i == 0 || ms < best {
			best = ms
		}
	}
	return best, nil
}

// RunPersist warms one tier's cache with the same mixed workload the
// throughput and memory experiments use, then measures both snapshot
// formats' save and restore costs over it.
func RunPersist(seed int64, tier ThroughputTier) (*PersistResult, error) {
	dataset := MoleculeDataset(seed, tier.DatasetSize)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gen.NewWorkload(newRand(seed+7), dataset, gen.WorkloadConfig{
		Size: tier.Queries, Mixed: true, PoolSize: max(tier.PoolSize, 8),
		ZipfS: tier.ZipfS, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, err
	}
	reqs := make([]core.Request, len(w.Queries))
	for i, q := range w.Queries {
		reqs[i] = core.Request{Graph: q.G, Type: q.Type}
	}
	c, err := core.New(method, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	for i, o := range c.ExecuteAll(reqs, runtime.GOMAXPROCS(0)) {
		if o.Err != nil {
			return nil, fmt.Errorf("query %d: %w", i, o.Err)
		}
	}

	r := &PersistResult{
		Tier:        tier.Name,
		DatasetSize: tier.DatasetSize,
		Queries:     tier.Queries,
		Entries:     c.Len(),
	}
	const rounds = 3

	var v2, v3 bytes.Buffer
	if r.V2SaveMs, err = bestOf(rounds, func() error {
		v2.Reset()
		return c.WriteStateV2(&v2)
	}); err != nil {
		return nil, fmt.Errorf("v2 save: %w", err)
	}
	if r.V3SaveMs, err = bestOf(rounds, func() error {
		v3.Reset()
		return c.WriteState(&v3)
	}); err != nil {
		return nil, fmt.Errorf("v3 save: %w", err)
	}
	r.V2Bytes = v2.Len()
	r.V3Bytes = v3.Len()

	restorer, err := core.New(method, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	if r.V2RestoreMs, err = bestOf(rounds, func() error {
		return restorer.ReadState(bytes.NewReader(v2.Bytes()))
	}); err != nil {
		return nil, fmt.Errorf("v2 restore: %w", err)
	}
	if r.V3RestoreMs, err = bestOf(rounds, func() error {
		return restorer.ReadState(bytes.NewReader(v3.Bytes()))
	}); err != nil {
		return nil, fmt.Errorf("v3 restore: %w", err)
	}

	dir, err := os.MkdirTemp("", "gcpersist")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "state.gcs3")
	if err := os.WriteFile(path, v3.Bytes(), 0o644); err != nil {
		return nil, err
	}
	if r.V3LazyRestoreMs, err = bestOf(rounds, func() error {
		closer, err := restorer.RestoreStateLazy(path)
		if err != nil {
			return err
		}
		// Close inside the timed region: each round must release the
		// previous mapping, and no round's entries are ever faulted, so the
		// handle owes nothing after the restore itself.
		return closer.Close()
	}); err != nil {
		return nil, fmt.Errorf("v3 lazy restore: %w", err)
	}

	if r.V3RestoreMs > 0 {
		r.RestoreSpeedup = r.V2RestoreMs / r.V3RestoreMs
	}
	if r.V3LazyRestoreMs > 0 {
		r.LazySpeedup = r.V2RestoreMs / r.V3LazyRestoreMs
	}
	return r, nil
}
