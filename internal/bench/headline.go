package bench

import (
	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// HeadlineResult is EXP-HL: the paper's headline claim ("over 6 million
// queries … speedups up to 40×") reproduced in shape at configurable
// scale.
type HeadlineResult struct {
	DatasetSize int
	Queries     int
	Speedups    Speedups
	// MaxQuerySpeedup is the largest per-query test speedup observed
	// (the "up to" number).
	MaxQuerySpeedup float64
	HitRate         float64
	CacheBytes      int
	IndexBytes      int
}

// RunHeadline executes a long Zipf+containment workload through GC over
// GGSX. datasetSize and queries scale the experiment; the demo default in
// gcbench is 1000 graphs × 5000 queries, and the full-paper scale
// (millions of queries) is reachable with the same code path.
func RunHeadline(seed int64, datasetSize, queries int) (*HeadlineResult, error) {
	dataset := MoleculeDataset(seed, datasetSize)
	method := ftv.NewGGSXMethod(dataset, 4)
	w, err := gen.NewWorkload(newRand(seed+55), dataset, gen.WorkloadConfig{
		Size: queries, Type: ftv.Subgraph, PoolSize: 150,
		ZipfS: 1.3, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 14,
	})
	if err != nil {
		return nil, err
	}
	base := RunBasePass(method, w.Queries)

	cfg := core.DefaultConfig()
	cfg.Shards = 1 // sequential reproduction: independent of sharding and window engine
	cfg.Capacity = 100
	cfg.Window = 10
	c, err := core.New(method, cfg)
	if err != nil {
		return nil, err
	}
	var gcp PassStats
	maxSpeed := 1.0
	for _, q := range w.Queries {
		res, err := c.Execute(q.G, q.Type)
		if err != nil {
			return nil, err
		}
		gcp.Queries++
		gcp.Tests += int64(res.Tests)
		gcp.TotalTime += res.TotalTime()
		if s := res.TestSpeedup(); s > maxSpeed {
			maxSpeed = s
		}
	}
	snap := c.Stats()
	hitQueries := snap.ExactHits + snap.SubHitQueries + snap.SuperHitQueries
	return &HeadlineResult{
		DatasetSize:     datasetSize,
		Queries:         queries,
		Speedups:        ComputeSpeedups(base, gcp),
		MaxQuerySpeedup: maxSpeed,
		HitRate:         float64(hitQueries) / float64(snap.Queries),
		CacheBytes:      c.Bytes(),
		IndexBytes:      method.Filter().IndexBytes(),
	}, nil
}
