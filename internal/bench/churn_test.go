package bench

import "testing"

func TestRunChurnComparison(t *testing.T) {
	cmp, err := RunChurnComparison(2018, 80, 160, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Mutations < 4 {
		t.Fatalf("only %d mutations fired", cmp.Mutations)
	}
	if cmp.Maintained.Queries != cmp.Rebuild.Queries || cmp.Maintained.Queries != 160 {
		t.Fatalf("query counts diverge: %d vs %d", cmp.Maintained.Queries, cmp.Rebuild.Queries)
	}
	// The whole point: exact maintenance must beat cold rebuilds on the
	// total sub-iso bill (answer equality is asserted inside the runner).
	if !cmp.MaintainedWins() {
		t.Fatalf("maintained cache did not win: %d tests (incl. %d maintenance) vs %d",
			cmp.Maintained.TotalTests(), cmp.Maintained.MaintenanceTests, cmp.Rebuild.TotalTests())
	}
	if cmp.Maintained.MaintenanceTests == 0 {
		t.Error("no maintenance tests recorded: additions never reconciled")
	}
	if cmp.TestReduction() <= 0 {
		t.Errorf("test reduction %.3f, want > 0", cmp.TestReduction())
	}
}
