package bench

import "testing"

func TestRunChurnComparison(t *testing.T) {
	cmp, err := RunChurnComparison(2018, 80, 160, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Mutations < 4 {
		t.Fatalf("only %d mutations fired", cmp.Mutations)
	}
	if cmp.Maintained.Queries != cmp.Rebuild.Queries || cmp.Maintained.Queries != 160 {
		t.Fatalf("query counts diverge: %d vs %d", cmp.Maintained.Queries, cmp.Rebuild.Queries)
	}
	// The whole point: exact maintenance must beat cold rebuilds on the
	// total sub-iso bill (answer equality is asserted inside the runner).
	if !cmp.MaintainedWins() {
		t.Fatalf("maintained cache did not win: %d tests (incl. %d maintenance) vs %d",
			cmp.Maintained.TotalTests(), cmp.Maintained.MaintenanceTests, cmp.Rebuild.TotalTests())
	}
	if cmp.Maintained.MaintenanceTests == 0 {
		t.Error("no maintenance tests recorded: additions never reconciled")
	}
	if cmp.TestReduction() <= 0 {
		t.Errorf("test reduction %.3f, want > 0", cmp.TestReduction())
	}
	// The stream is add-heavy and both passes mutate identically.
	if cmp.Maintained.Adds <= cmp.Maintained.Removes {
		t.Errorf("stream not add-heavy: %d adds vs %d removes", cmp.Maintained.Adds, cmp.Maintained.Removes)
	}
	if cmp.Maintained.Adds != cmp.Rebuild.Adds || cmp.Maintained.Removes != cmp.Rebuild.Removes {
		t.Errorf("mutation mixes diverge: %d/%d vs %d/%d",
			cmp.Maintained.Adds, cmp.Maintained.Removes, cmp.Rebuild.Adds, cmp.Rebuild.Removes)
	}
	// The maintained pass patches the GGSX trie incrementally; the rebuild
	// baseline re-indexes the dataset on every addition.
	if cmp.Maintained.FilterRebuilds != 0 || cmp.Maintained.FilterInserts != int64(cmp.Maintained.Adds) {
		t.Errorf("maintained filter path: %d inserts / %d rebuilds, want %d / 0",
			cmp.Maintained.FilterInserts, cmp.Maintained.FilterRebuilds, cmp.Maintained.Adds)
	}
	if cmp.Rebuild.FilterInserts != 0 || cmp.Rebuild.FilterRebuilds != int64(cmp.Rebuild.Adds) {
		t.Errorf("rebuild filter path: %d inserts / %d rebuilds, want 0 / %d",
			cmp.Rebuild.FilterInserts, cmp.Rebuild.FilterRebuilds, cmp.Rebuild.Adds)
	}
	// Compaction keeps the maintained log bounded (eager mode drains it at
	// every mutation, so its peak is at most the in-flight record).
	if cmp.Maintained.MaxAdditionLog > 1 {
		t.Errorf("maintained addition log peaked at %d, want ≤ 1", cmp.Maintained.MaxAdditionLog)
	}
	if cmp.Maintained.AvgAddLatency() <= 0 {
		t.Error("no addition latency recorded")
	}
}
