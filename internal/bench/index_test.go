package bench

import "testing"

// The acceptance bar for the feature index: on the bundled mixed workload
// it must strictly reduce cache-side hit-detection work — fewer dominance
// merges, a non-zero pruned count — while never running more q↔h iso
// tests, with byte-identical answers (RunIndexComparison errors on any
// divergence).
func TestIndexComparisonStrictlyReduces(t *testing.T) {
	// Sizes matter: the run is fully deterministic (seeded generators, PIN
	// policy), and at 100 molecules / 200 queries the workload is rich
	// enough that the index provably saves VF2 attempts, not just merges.
	cmp, err := RunIndexComparison(2018, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Indexed.HitIndexPruned == 0 {
		t.Error("index pruned nothing on the mixed workload")
	}
	if cmp.Indexed.HitFullChecks >= cmp.Unindexed.HitFullChecks {
		t.Errorf("dominance merges not reduced: %d indexed vs %d unindexed",
			cmp.Indexed.HitFullChecks, cmp.Unindexed.HitFullChecks)
	}
	if cmp.Indexed.HitDetectionTests >= cmp.Unindexed.HitDetectionTests {
		t.Errorf("cache-side iso tests not strictly reduced: %d indexed vs %d unindexed",
			cmp.Indexed.HitDetectionTests, cmp.Unindexed.HitDetectionTests)
	}
	if !cmp.Reduced() {
		t.Errorf("Reduced() = false: indexed %+v unindexed %+v", cmp.Indexed, cmp.Unindexed)
	}
}
