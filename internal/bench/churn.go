package bench

import (
	"fmt"
	"time"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
)

// ChurnStats summarizes one strategy's pass over the identical
// query/mutation stream.
type ChurnStats struct {
	Queries   int
	Mutations int
	Elapsed   time.Duration
	QPS       float64
	// DatasetTests counts the dataset sub-iso tests the queries executed;
	// MaintenanceTests counts the containment tests spent keeping cached
	// answer sets exact across mutations (0 for the drop-and-rebuild
	// strategy, which pays in DatasetTests instead by re-warming).
	DatasetTests     int64
	MaintenanceTests int64
	TestsSaved       int64
	ExactHits        int64
	// Adds / Removes split the mutations; AddNs / RemoveNs total the wall
	// time of each strategy's WHOLE mutation path — for the maintained
	// cache that includes eager answer-set reconciliation against every
	// resident entry, for the rebuild baseline only the method-level
	// mutation (its maintenance bill lands in query-time re-warming
	// instead). FilterMaintainNs isolates the one step both strategies
	// perform identically — maintaining the filter index for the added
	// graph — so ITS comparison is the O(graph) incremental insert against
	// the O(dataset) rebuild over the same work.
	Adds, Removes    int
	AddNs, RemoveNs  int64
	FilterMaintainNs int64
	// FilterInserts / FilterRebuilds report how the strategy's method
	// maintained its filter across the additions; MaxAdditionLog is the
	// addition log's peak length, showing compaction keeping it bounded.
	FilterInserts  int64
	FilterRebuilds int64
	MaxAdditionLog int
}

// TotalTests is the strategy's full sub-iso bill: query-time tests plus
// maintenance tests.
func (s ChurnStats) TotalTests() int64 { return s.DatasetTests + s.MaintenanceTests }

// AvgAddLatency returns the mean wall time of one dataset addition along
// the strategy's full mutation path (see the AddNs field for what each
// strategy's path includes), 0 when no addition ran.
func (s ChurnStats) AvgAddLatency() time.Duration {
	if s.Adds == 0 {
		return 0
	}
	return time.Duration(s.AddNs / int64(s.Adds))
}

// AvgFilterMaintain returns the mean wall time one addition spent
// maintaining the filter index alone — identical work in both
// strategies, hence the apples-to-apples insert-vs-rebuild column.
func (s ChurnStats) AvgFilterMaintain() time.Duration {
	if s.Adds == 0 {
		return 0
	}
	return time.Duration(s.FilterMaintainNs / int64(s.Adds))
}

// AvgRemoveLatency returns the mean wall time of one dataset removal.
func (s ChurnStats) AvgRemoveLatency() time.Duration {
	if s.Removes == 0 {
		return 0
	}
	return time.Duration(s.RemoveNs / int64(s.Removes))
}

// ChurnComparison reports exact cache maintenance against the naive
// drop-cache-and-rebuild strategy over the identical mixed, add-heavy
// query/add/remove stream (two of every three mutations are additions —
// the regime where incremental index maintenance matters). Answers are
// cross-checked byte-identical between the two strategies inside
// RunChurnComparison.
type ChurnComparison struct {
	DatasetSize int
	Queries     int
	Mutations   int
	// Maintained keeps ONE cache across the whole stream: removals clear
	// answer bits stop-the-world, additions verify the new graph against
	// the cached entries (eager mode) and patch the GGSX trie through the
	// incremental O(graph) insert.
	Maintained ChurnStats
	// Rebuild is the pre-maintenance world: the cache is dropped at every
	// mutation and starts cold, and every addition rebuilds the filter
	// from scratch (ftv.RebuildOnly forces the O(dataset) factory path) —
	// the only correct strategy available without maintenance support.
	Rebuild ChurnStats
}

// MaintainedWins reports whether maintenance beat drop-and-rebuild on the
// total sub-iso bill (the deterministic metric; wall time follows it).
func (c *ChurnComparison) MaintainedWins() bool {
	return c.Maintained.TotalTests() < c.Rebuild.TotalTests()
}

// TestReduction returns the fraction of the rebuild strategy's sub-iso
// bill that maintenance saved (0.35 = 35% fewer tests).
func (c *ChurnComparison) TestReduction() float64 {
	if c.Rebuild.TotalTests() == 0 {
		return 0
	}
	return 1 - float64(c.Maintained.TotalTests())/float64(c.Rebuild.TotalTests())
}

// churnPlan precomputes the interleaved stream: after every `interval`
// queries one mutation fires — add-heavy, two additions (from the extras
// pool) for every removal (pseudo-random live gid — identical picks in
// both strategies because the live sets evolve identically).
type churnPlan struct {
	queries []core.Request
	extras  []*graph.Graph
	// interval queries elapse between mutations; maxMutations caps the
	// total so flooring the interval can never overshoot the requested
	// count (an uncapped plan fires up to mutations+1 times).
	interval     int
	maxMutations int
}

// wantsAdd reports whether mutation m of the plan is an addition: two of
// every three are, matching a dataset that mostly grows.
func wantsAdd(m int) bool { return m%3 != 2 }

// runChurnPass drives the plan through one strategy. rebuild == nil keeps
// one maintained cache; otherwise rebuild is called at every mutation to
// produce the next (cold) cache.
func runChurnPass(plan churnPlan, method *ftv.Method, cfg core.Config, drop bool) (ChurnStats, []string, error) {
	cache, err := core.New(method, cfg)
	if err != nil {
		return ChurnStats{}, nil, err
	}
	caches := []*core.Cache{cache}
	answers := make([]string, 0, len(plan.queries))
	rng := newRand(4242)
	nextExtra := 0
	mutations := 0

	var stats ChurnStats
	t0 := time.Now()
	for i, req := range plan.queries {
		res, err := cache.Execute(req.Graph, req.Type)
		if err != nil {
			return ChurnStats{}, nil, fmt.Errorf("query %d: %w", i, err)
		}
		answers = append(answers, res.Answers.String())
		if (i+1)%plan.interval != 0 || mutations >= plan.maxMutations {
			continue
		}
		if wantsAdd(mutations) && nextExtra < len(plan.extras) {
			tm := time.Now()
			if drop {
				if _, err := method.AddGraph(plan.extras[nextExtra]); err != nil {
					return ChurnStats{}, nil, err
				}
			} else if _, err := cache.AddGraph(plan.extras[nextExtra]); err != nil {
				return ChurnStats{}, nil, err
			}
			stats.AddNs += time.Since(tm).Nanoseconds()
			stats.Adds++
			nextExtra++
		} else {
			view := method.View()
			if view.LiveCount() <= 1 {
				continue
			}
			gid := rng.Intn(view.Size())
			for view.Graph(gid) == nil {
				gid = (gid + 1) % view.Size()
			}
			tm := time.Now()
			if drop {
				if err := method.RemoveGraph(gid); err != nil {
					return ChurnStats{}, nil, err
				}
			} else if err := cache.RemoveGraph(gid); err != nil {
				return ChurnStats{}, nil, err
			}
			stats.RemoveNs += time.Since(tm).Nanoseconds()
			stats.Removes++
		}
		mutations++
		if logLen := method.AdditionLogLen(); logLen > stats.MaxAdditionLog {
			stats.MaxAdditionLog = logLen
		}
		if drop {
			// The rebuild strategy has no maintenance: the only sound move
			// after a mutation is an empty cache over the mutated dataset.
			cache, err = core.New(method, cfg)
			if err != nil {
				return ChurnStats{}, nil, err
			}
			caches = append(caches, cache)
		}
	}
	elapsed := time.Since(t0)

	for _, c := range caches {
		snap := c.Stats()
		stats.DatasetTests += snap.TestsExecuted
		stats.MaintenanceTests += snap.MaintenanceTests
		stats.TestsSaved += snap.TestsSaved
		stats.ExactHits += snap.ExactHits
	}
	stats.FilterInserts = method.FilterInserts()
	stats.FilterRebuilds = method.FilterRebuilds()
	stats.FilterMaintainNs = method.FilterMaintainNs()
	stats.Queries = len(plan.queries)
	stats.Mutations = mutations
	stats.Elapsed = elapsed
	stats.QPS = float64(len(plan.queries)) / elapsed.Seconds()
	return stats, answers, nil
}

// RunChurnComparison measures exact cache maintenance against
// drop-cache-and-rebuild over one add-heavy mixed query stream with
// `mutations` interleaved dataset mutations, and cross-checks that both
// strategies returned byte-identical answers for every query (they must:
// both are exact). Reported errors include any answer divergence — the
// comparison doubles as an end-to-end churn oracle. The maintained pass
// runs the incremental-insert GGSX method; the rebuild pass wraps the
// same filter in ftv.RebuildOnly, so the mutation-latency columns
// compare O(graph) inserts against the O(dataset) rebuild baseline over
// identical work.
func RunChurnComparison(seed int64, datasetSize, queries, mutations int) (*ChurnComparison, error) {
	if mutations < 2 {
		mutations = 2
	}
	dataset := MoleculeDataset(seed, datasetSize)
	extras := MoleculeDataset(seed+1, mutations) // oversupplied: at most ~2/3 are consumed
	w, err := gen.NewWorkload(newRand(seed+9), dataset, gen.WorkloadConfig{
		Size: queries, Mixed: true, PoolSize: max(queries/3, 8),
		ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, err
	}
	plan := churnPlan{
		queries:      make([]core.Request, len(w.Queries)),
		extras:       extras,
		interval:     max(queries/(mutations+1), 1),
		maxMutations: mutations,
	}
	for i, q := range w.Queries {
		plan.queries[i] = core.Request{Graph: q.G, Type: q.Type}
	}

	cfg := core.DefaultConfig()
	cfg.Shards = 1 // sequential comparison: deterministic contents

	maintained, ansM, err := runChurnPass(plan, ftv.NewGGSXMethod(dataset, 3), cfg, false)
	if err != nil {
		return nil, fmt.Errorf("maintained pass: %w", err)
	}
	rebuildMethod := ftv.NewDynamicMethod("ggsx-rebuild/vf2", dataset,
		func(ds []*graph.Graph) ftv.Filter { return ftv.RebuildOnly(ftv.NewGGSX(ds, 3)) }, nil)
	rebuild, ansR, err := runChurnPass(plan, rebuildMethod, cfg, true)
	if err != nil {
		return nil, fmt.Errorf("rebuild pass: %w", err)
	}
	for i := range ansM {
		if ansM[i] != ansR[i] {
			return nil, fmt.Errorf("churn answers diverge at query %d: maintained %s, rebuild %s", i, ansM[i], ansR[i])
		}
	}
	return &ChurnComparison{
		DatasetSize: datasetSize,
		Queries:     maintained.Queries,
		Mutations:   maintained.Mutations,
		Maintained:  maintained,
		Rebuild:     rebuild,
	}, nil
}
