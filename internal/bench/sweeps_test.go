package bench

import "testing"

func TestCapacitySweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	pts, err := RunCapacitySweep(81, 400, []int{5, 50, 150})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Larger caches must not do substantially worse; the largest should
	// beat the smallest on test speedup.
	if pts[2].Speedups.Tests < pts[0].Speedups.Tests*0.95 {
		t.Errorf("capacity curve inverted: %v < %v", pts[2].Speedups.Tests, pts[0].Speedups.Tests)
	}
	for _, p := range pts {
		if p.Speedups.Tests < 1 {
			t.Errorf("capacity %d: speedup %v < 1", p.Value, p.Speedups.Tests)
		}
	}
}

func TestWindowSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	pts, err := RunWindowSweep(82, 300, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Speedups.Tests < 1 {
			t.Errorf("window %d: speedup %v < 1", p.Value, p.Speedups.Tests)
		}
		if p.HitRate <= 0 {
			t.Errorf("window %d: no hits", p.Value)
		}
	}
}

func TestHitBudgetSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiment")
	}
	pts, err := RunHitBudgetSweep(83, 300, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Budget 0 disables sub/super savings; budget 4 must save at least as
	// many tests.
	if pts[1].Speedups.Tests < pts[0].Speedups.Tests*0.95 {
		t.Errorf("hit budget curve inverted: %v vs %v",
			pts[1].Speedups.Tests, pts[0].Speedups.Tests)
	}
}
