package bench

import (
	"runtime"
	"testing"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// TestParallelThroughputRuns pins the experiment's shape: every requested
// worker count is measured for all three engines over the same workload,
// and every query completes.
func TestParallelThroughputRuns(t *testing.T) {
	cmp, err := ParallelThroughput(7, 40, 60, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Serialized) != 2 || len(cmp.SharedWindow) != 2 || len(cmp.PerShard) != 2 {
		t.Fatalf("points: %d serialized, %d shared-window, %d per-shard, want 2 each",
			len(cmp.Serialized), len(cmp.SharedWindow), len(cmp.PerShard))
	}
	for i, w := range cmp.WorkerCounts {
		for _, p := range []ThroughputPoint{cmp.Serialized[i], cmp.SharedWindow[i], cmp.PerShard[i]} {
			if p.Workers != w || p.Queries != 60 || p.QPS <= 0 {
				t.Errorf("bad point %+v for workers=%d", p, w)
			}
		}
	}
	if cmp.SpeedupAt(4) <= 0 || cmp.WindowSpeedupAt(4) <= 0 {
		t.Error("speedups not computed")
	}
	if cmp.SpeedupAt(99) != 0 || cmp.WindowSpeedupAt(99) != 0 {
		t.Error("unknown worker count should report 0")
	}
}

// TestShardedScalesPastSerialized is the acceptance gate for the sharding
// refactor: at 8 workers the sharded engine must deliver ≥2× the
// serialized baseline's queries/sec on the mixed workload. A wall-clock
// ratio is only meaningful with real hardware parallelism and an
// undistorted scheduler, so the assertion arms only on ≥4 CPUs without
// the race detector; otherwise the run still executes both engines end
// to end and logs the measured ratio.
func TestShardedScalesPastSerialized(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement skipped in -short")
	}
	cmp, err := ParallelThroughput(2018, 100, 200, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	speedup := cmp.SpeedupAt(8)
	t.Logf("8 workers: serialized %.1f q/s, shared-window %.1f q/s, per-shard %.1f q/s, speedup %.2f× (GOMAXPROCS=%d, race=%v)",
		cmp.Serialized[0].QPS, cmp.SharedWindow[0].QPS, cmp.PerShard[0].QPS, speedup, runtime.GOMAXPROCS(0), raceEnabled)
	if raceEnabled {
		t.Skip("race detector distorts scheduling; not asserting the 2× scaling gate")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("%d CPUs: not enough hardware parallelism to assert the 2× scaling gate", runtime.GOMAXPROCS(0))
	}
	if speedup < 2 {
		t.Errorf("sharded engine delivers %.2f× the serialized baseline at 8 workers, want ≥2×", speedup)
	}
}

// The default worker sweep must start at the sequential floor, rise
// strictly, and top out exactly at GOMAXPROCS — never past the hardware.
func TestDefaultThroughputWorkersSweep(t *testing.T) {
	ws := DefaultThroughputWorkers()
	if len(ws) == 0 || ws[0] != 1 {
		t.Fatalf("sweep must start at 1 worker: %v", ws)
	}
	maxW := runtime.GOMAXPROCS(0)
	if ws[len(ws)-1] != maxW {
		t.Errorf("sweep must end at GOMAXPROCS=%d: %v", maxW, ws)
	}
	for i := 1; i < len(ws); i++ {
		if ws[i] <= ws[i-1] || ws[i] > maxW {
			t.Fatalf("sweep must rise strictly and stay within GOMAXPROCS: %v", ws)
		}
	}
}

// TierByName resolves the -scale flag values; the large tier must hit
// the scaling floor the ROADMAP asks for (10k+ graphs, 10k+ queries,
// zipf-skewed repeats).
func TestTierByName(t *testing.T) {
	for _, name := range []string{"", "default"} {
		tier, err := TierByName(name)
		if err != nil || tier.Name != "default" {
			t.Fatalf("TierByName(%q) = %+v, %v", name, tier, err)
		}
	}
	large, err := TierByName("large")
	if err != nil {
		t.Fatal(err)
	}
	if large.DatasetSize < 10000 || large.Queries < 10000 {
		t.Errorf("large tier %d graphs / %d queries, want ≥10k each", large.DatasetSize, large.Queries)
	}
	if large.PoolSize >= large.Queries || large.ZipfS <= 1 {
		t.Errorf("large tier must draw zipf-skewed repeats from a smaller pool: %+v", large)
	}
	if _, err := TierByName("galactic"); err == nil {
		t.Error("unknown tier must error")
	}
}

// A custom tier's identity must flow through to the comparison so the
// JSON artifact is self-describing.
func TestParallelThroughputTierStampsIdentity(t *testing.T) {
	tier := ThroughputTier{Name: "mini", DatasetSize: 30, Queries: 40, PoolSize: 12, ZipfS: 1.2, Rounds: 1}
	cmp, err := ParallelThroughputTier(5, tier, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Tier != "mini" || cmp.DatasetSize != 30 || cmp.Queries != 40 {
		t.Errorf("comparison identity = %q/%d/%d, want mini/30/40", cmp.Tier, cmp.DatasetSize, cmp.Queries)
	}
	env := CaptureEnvironment()
	if env.GOMAXPROCS < 1 || env.NumCPU < 1 || env.GoVersion == "" {
		t.Errorf("bad environment snapshot: %+v", env)
	}
}

// benchThroughput drives one engine configuration for b.N batches.
func benchThroughput(b *testing.B, serialized bool, workers int) {
	dataset := MoleculeDataset(2018, 100)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gen.NewWorkload(newRand(2018+7), dataset, gen.WorkloadConfig{
		Size: 200, Mixed: true, PoolSize: 66,
		ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	reqs := make([]core.Request, len(w.Queries))
	for i, q := range w.Queries {
		reqs[i] = core.Request{Graph: q.G, Type: q.Type}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := core.DefaultConfig()
		if serialized {
			cfg.Shards = 1
			cfg.Serialized = true
		}
		c, err := core.New(method, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for j, o := range c.ExecuteAll(reqs, workers) {
			if o.Err != nil {
				b.Fatalf("query %d: %v", j, o.Err)
			}
		}
	}
	b.ReportMetric(float64(len(reqs)), "queries/op")
}

func BenchmarkSerializedBaseline8Workers(b *testing.B) { benchThroughput(b, true, 8) }
func BenchmarkSharded8Workers(b *testing.B)            { benchThroughput(b, false, 8) }
func BenchmarkSharded1Worker(b *testing.B)             { benchThroughput(b, false, 1) }
