package bench

import (
	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
)

// SweepPoint is one cell of a parameter sweep: the knob value and the
// speedups/hit-rate it produced.
type SweepPoint struct {
	Value    int
	Speedups Speedups
	HitRate  float64
}

// sweepWorkload builds the shared dataset/workload for the sweeps.
func sweepWorkload(seed int64, queries int) (*ftv.Method, []gen.Query, error) {
	dataset := MoleculeDataset(seed, 300)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gen.NewWorkload(newRand(seed+5), dataset, gen.WorkloadConfig{
		Size: queries, Type: ftv.Subgraph, PoolSize: 120,
		ZipfS: 1.2, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		return nil, nil, err
	}
	return method, w.Queries, nil
}

// RunCapacitySweep measures GC speedup as a function of cache capacity —
// the classic hit-rate-versus-capacity cache curve of the full GraphCache
// evaluation. Expected shape: monotone non-decreasing returns with
// saturation once the working set fits.
func RunCapacitySweep(seed int64, queries int, capacities []int) ([]SweepPoint, error) {
	if len(capacities) == 0 {
		capacities = []int{10, 25, 50, 100, 200}
	}
	method, qs, err := sweepWorkload(seed, queries)
	if err != nil {
		return nil, err
	}
	base := RunBasePass(method, qs)
	var out []SweepPoint
	for _, cap := range capacities {
		cfg := core.DefaultConfig()
		cfg.Shards = 1 // sequential reproduction: independent of sharding and window engine
		cfg.Capacity = cap
		cfg.Window = 10
		c, err := core.New(method, cfg)
		if err != nil {
			return nil, err
		}
		gcp, err := RunGCPass(c, qs)
		if err != nil {
			return nil, err
		}
		snap := c.Stats()
		hitQ := snap.ExactHits + snap.SubHitQueries + snap.SuperHitQueries
		out = append(out, SweepPoint{
			Value:    cap,
			Speedups: ComputeSpeedups(base, gcp),
			HitRate:  float64(hitQ) / float64(snap.Queries),
		})
	}
	return out, nil
}

// RunWindowSweep measures the admission-window size trade-off: small
// windows admit (and start serving hits) sooner; large windows batch
// management work but delay availability.
func RunWindowSweep(seed int64, queries int, windows []int) ([]SweepPoint, error) {
	if len(windows) == 0 {
		windows = []int{1, 5, 10, 25}
	}
	method, qs, err := sweepWorkload(seed, queries)
	if err != nil {
		return nil, err
	}
	base := RunBasePass(method, qs)
	var out []SweepPoint
	for _, wsize := range windows {
		cfg := core.DefaultConfig()
		cfg.Shards = 1 // sequential reproduction: independent of sharding and window engine
		cfg.Capacity = 50
		cfg.Window = wsize
		c, err := core.New(method, cfg)
		if err != nil {
			return nil, err
		}
		gcp, err := RunGCPass(c, qs)
		if err != nil {
			return nil, err
		}
		snap := c.Stats()
		hitQ := snap.ExactHits + snap.SubHitQueries + snap.SuperHitQueries
		out = append(out, SweepPoint{
			Value:    wsize,
			Speedups: ComputeSpeedups(base, gcp),
			HitRate:  float64(hitQ) / float64(snap.Queries),
		})
	}
	return out, nil
}

// RunHitBudgetSweep measures the MaxSubHits/MaxSuperHits knob: more hits
// exploited per query saves more tests but spends more hit-detection work.
func RunHitBudgetSweep(seed int64, queries int, budgets []int) ([]SweepPoint, error) {
	if len(budgets) == 0 {
		budgets = []int{0, 1, 2, 4, 8}
	}
	method, qs, err := sweepWorkload(seed, queries)
	if err != nil {
		return nil, err
	}
	base := RunBasePass(method, qs)
	var out []SweepPoint
	for _, b := range budgets {
		cfg := core.DefaultConfig()
		cfg.Shards = 1 // sequential reproduction: independent of sharding and window engine
		cfg.Capacity = 50
		cfg.Window = 10
		cfg.MaxSubHits = b
		cfg.MaxSuperHits = b
		c, err := core.New(method, cfg)
		if err != nil {
			return nil, err
		}
		gcp, err := RunGCPass(c, qs)
		if err != nil {
			return nil, err
		}
		snap := c.Stats()
		hitQ := snap.ExactHits + snap.SubHitQueries + snap.SuperHitQueries
		out = append(out, SweepPoint{
			Value:    b,
			Speedups: ComputeSpeedups(base, gcp),
			HitRate:  float64(hitQ) / float64(snap.Queries),
		})
	}
	return out, nil
}
