package bitset

import (
	"encoding/binary"
	"fmt"
)

// Binary container encoding, used by the GCS3 snapshot format
// (internal/core/persist.go). The encoding serializes the Set's CURRENT
// container verbatim — sparse index lists, run spans and dense words all
// round-trip without re-encoding, so a restored set pays exactly the
// footprint the writer's set did. Layout (all integers little-endian):
//
//	byte  0      container mode (0 sparse, 1 dense, 2 run)
//	bytes 1..9   capacity in bits (uint64)
//	bytes 9..17  payload element count (uint64): sparse indices,
//	             dense words, or run spans
//	bytes 17..   payload: sparse uint32 per index; dense uint64 per
//	             word; run (uint32 start, uint32 end) per span
//
// A dense set with count 0 is the legacy lazy all-clear form (nil word
// slice); it round-trips as such. FromBinary re-validates every container
// invariant, so a corrupted or hostile payload is rejected rather than
// smuggled into set algebra (where broken invariants would corrupt
// results or panic far from the parse site).

// binaryHeaderLen is the fixed prefix before the payload.
const binaryHeaderLen = 1 + 8 + 8

// AppendBinary appends the set's binary encoding to buf and returns the
// extended slice. The active container is serialized natively; the set is
// not mutated.
func (s *Set) AppendBinary(buf []byte) []byte {
	buf = append(buf, s.mode)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.n))
	switch s.mode {
	case modeSparse:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.sparse)))
		for _, v := range s.sparse {
			buf = binary.LittleEndian.AppendUint32(buf, v)
		}
	case modeDense:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.words)))
		for _, w := range s.words {
			buf = binary.LittleEndian.AppendUint64(buf, w)
		}
	case modeRun:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.runs)))
		for _, r := range s.runs {
			buf = binary.LittleEndian.AppendUint32(buf, r.start)
			buf = binary.LittleEndian.AppendUint32(buf, r.end)
		}
	}
	return buf
}

// BinarySize returns the exact length AppendBinary would produce.
func (s *Set) BinarySize() int {
	switch s.mode {
	case modeDense:
		return binaryHeaderLen + 8*len(s.words)
	case modeRun:
		return binaryHeaderLen + 8*len(s.runs)
	default:
		return binaryHeaderLen + 4*len(s.sparse)
	}
}

// FromBinary decodes one set from the front of data, returning the set and
// the number of bytes consumed. Every container invariant is re-validated:
// sparse indices must be strictly increasing and in range, run spans
// sorted, disjoint, non-adjacent, non-empty and in range, dense payloads
// exactly ⌈n/64⌉ words (or absent) with the tail bits of the last word
// clear, and the compact containers are only legal at capacities whose
// indices fit uint32. Errors describe the first violation.
func FromBinary(data []byte) (*Set, int, error) {
	if len(data) < binaryHeaderLen {
		return nil, 0, fmt.Errorf("bitset: binary header truncated: %d bytes", len(data))
	}
	mode := data[0]
	capBits := binary.LittleEndian.Uint64(data[1:9])
	count := binary.LittleEndian.Uint64(data[9:17])
	const maxInt = uint64(^uint(0) >> 1)
	if capBits > maxInt {
		return nil, 0, fmt.Errorf("bitset: capacity %d overflows int", capBits)
	}
	n := int(capBits)
	payload := data[binaryHeaderLen:]
	need := func(elemBytes uint64) ([]byte, error) {
		total := count * elemBytes
		if count > maxInt/8 || uint64(len(payload)) < total {
			return nil, fmt.Errorf("bitset: binary payload truncated: need %d elements, have %d bytes", count, len(payload))
		}
		return payload[:total], nil
	}
	s := &Set{n: n, mode: mode}
	switch mode {
	case modeSparse:
		if !fits32(n) {
			return nil, 0, fmt.Errorf("bitset: sparse container illegal at capacity %d", n)
		}
		p, err := need(4)
		if err != nil {
			return nil, 0, err
		}
		if count > 0 {
			idx := make([]uint32, count)
			prev := int64(-1)
			for i := range idx {
				v := binary.LittleEndian.Uint32(p[4*i:])
				if int64(v) <= prev {
					return nil, 0, fmt.Errorf("bitset: sparse indices not strictly increasing at element %d", i)
				}
				if uint64(v) >= capBits {
					return nil, 0, fmt.Errorf("bitset: sparse index %d out of range [0,%d)", v, n)
				}
				prev = int64(v)
				idx[i] = v
			}
			s.sparse = idx
		}
	case modeDense:
		words := uint64(n+wordBits-1) / wordBits
		if count != 0 && count != words {
			return nil, 0, fmt.Errorf("bitset: dense payload has %d words, capacity %d needs %d", count, n, words)
		}
		p, err := need(8)
		if err != nil {
			return nil, 0, err
		}
		if count > 0 {
			w := make([]uint64, count)
			for i := range w {
				w[i] = binary.LittleEndian.Uint64(p[8*i:])
			}
			if rem := n % wordBits; rem != 0 && w[len(w)-1]>>rem != 0 {
				return nil, 0, fmt.Errorf("bitset: dense tail bits beyond capacity %d are set", n)
			}
			s.words = w
		}
	case modeRun:
		if !fits32(n) {
			return nil, 0, fmt.Errorf("bitset: run container illegal at capacity %d", n)
		}
		if count == 0 {
			return nil, 0, fmt.Errorf("bitset: run container must hold at least one span")
		}
		p, err := need(8)
		if err != nil {
			return nil, 0, err
		}
		rs := make([]span, count)
		prevEnd := int64(-1)
		for i := range rs {
			start := binary.LittleEndian.Uint32(p[8*i:])
			end := binary.LittleEndian.Uint32(p[8*i+4:])
			if start >= end {
				return nil, 0, fmt.Errorf("bitset: empty run span [%d,%d) at element %d", start, end, i)
			}
			// Adjacent spans (start == previous end) must have been merged,
			// or span-count comparisons and Fingerprint would disagree
			// between equal sets.
			if int64(start) <= prevEnd {
				return nil, 0, fmt.Errorf("bitset: run spans overlap or touch at element %d", i)
			}
			if uint64(end) > capBits {
				return nil, 0, fmt.Errorf("bitset: run span end %d exceeds capacity %d", end, n)
			}
			prevEnd = int64(end)
			rs[i] = span{start, end}
		}
		s.runs = rs
	default:
		return nil, 0, fmt.Errorf("bitset: unknown container mode %d", mode)
	}
	return s, s.BinarySize(), nil
}
