// Package bitset provides fixed-capacity bitsets with adaptive storage.
//
// GraphCache represents answer sets and candidate sets as bitsets indexed by
// dataset-graph position, so the candidate-set algebra of the kernel
// (C = (C_M ∩ ⋂ A(h')) \ S) runs container-parallel. The zero value of Set
// is an empty bitset of capacity 0; use New for a sized one.
//
// # Adaptive containers
//
// A Set stores its bits in one of three containers and migrates between
// them as its population changes, so footprint tracks answer size, not
// dataset size:
//
//   - sparse: a sorted []uint32 of set indices. The zero value and New
//     produce an empty sparse set with a nil payload, so an all-zero set
//     costs O(1) at any capacity — this keeps the empty Excluded/Survivors
//     sets on the cache's exact-hit fast path free. Ascending Add (the
//     order verification and posting-list construction emit) appends in
//     O(1); past the density threshold the set migrates to dense.
//   - dense: the classic []uint64 word array, with word-parallel binary
//     ops. A nil word slice still means "all clear" (the legacy lazy
//     representation), so materialization stays a mutation-time event.
//   - run: sorted, disjoint, non-adjacent half-open [start,end) spans —
//     the shape NewFull and removal-dominated sets (live masks) take.
//     A full set is one span regardless of capacity.
//
// Migration is container-local: sparse and run sets upgrade to dense when
// they outgrow their byte break-even (sparseMax, runMax); dense sets
// downgrade to sparse when an And/AndNot leaves them far below it (the
// population count is fused into the word loop, so the check is free).
// Compact re-encodes a set in its smallest container — publication points
// (entry admission, interning, persistence restore) call it so long-lived
// sets always pay the minimal footprint. Every binary operation is
// specialized per container pair: sparse∧sparse costs O(min population),
// dense∧dense stays word-parallel, and a full-run operand short-circuits.
//
// Operations that combine two sets require equal capacity and panic
// otherwise: mixing sets over different datasets is a programming error,
// not a runtime condition.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Container modes. modeSparse is zero so the zero value of Set — and New,
// which only sets the capacity — is the empty sparse set with no payload.
const (
	modeSparse uint8 = iota // sparse: sorted set indices; nil = empty
	modeDense               // words: bit array; nil = all clear (lazy)
	modeRun                 // runs: sorted disjoint non-adjacent spans
)

// span is a half-open run [start, end) of set bits; start < end always.
type span struct{ start, end uint32 }

// maxRunCap is the largest capacity whose indices fit the uint32-based
// sparse and run containers; larger sets stay dense.
const maxRunCap = uint64(1) << 32

// fits32 reports whether every index of a capacity-n set fits in uint32.
func fits32(n int) bool { return uint64(n) <= maxRunCap }

// Set is a bitset with a fixed capacity chosen at construction. Exactly
// one of words/sparse/runs is active, selected by mode; the others are
// nil. See the package comment for the container invariants.
type Set struct {
	words  []uint64 // modeDense payload; nil means all clear
	sparse []uint32 // modeSparse payload; sorted, unique; nil/empty = empty set
	runs   []span   // modeRun payload; sorted, disjoint, non-adjacent, never empty
	mode   uint8
	n      int // capacity in bits
}

// New returns an empty set with capacity for n bits (bit indices 0..n-1).
// The payload is allocated lazily on first mutation, so New itself costs
// one small fixed allocation regardless of n.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	s := &Set{n: n}
	if !fits32(n) {
		s.mode = modeDense // indices would overflow the compact containers
	}
	return s
}

// NewFull returns a set of capacity n with all n bits set — a single run
// span, so a full set is O(1) in space and time at any capacity.
func NewFull(n int) *Set {
	s := New(n)
	s.SetAll()
	return s
}

// FromIndices returns a set of capacity n with exactly the given bits set.
// Inputs above the sparse break-even build directly in the dense container
// so unsorted index lists never pay quadratic sparse insertion.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	if len(idx) > sparseMax(n) {
		s.mode = modeDense
	}
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// materialize allocates the word storage of an all-clear dense set so a
// bit can be set in place. Only valid in modeDense.
func (s *Set) materialize() {
	if s.words == nil {
		s.words = make([]uint64, (s.n+wordBits-1)/wordBits)
	}
}

// Add sets bit i.
//
//gclint:mutates
func (s *Set) Add(i int) {
	s.check(i)
	switch s.mode {
	case modeSparse:
		s.addSparse(uint32(i))
	case modeRun:
		s.addRun(uint32(i))
	default:
		s.materialize()
		s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	}
}

// addSparse inserts v into the sorted sparse payload, migrating to dense
// past the break-even. The append fast path makes ascending construction
// (verification order, posting lists) O(1) amortized per bit.
func (s *Set) addSparse(v uint32) {
	k := len(s.sparse)
	if k > 0 && s.sparse[k-1] == v {
		return
	}
	j := k
	if k > 0 && s.sparse[k-1] > v {
		j = searchU32(s.sparse, v)
		if j < k && s.sparse[j] == v {
			return
		}
	}
	if k >= sparseMax(s.n) {
		s.toDense()
		s.words[v/wordBits] |= 1 << (v % wordBits)
		return
	}
	s.sparse = append(s.sparse, 0)
	copy(s.sparse[j+1:], s.sparse[j:])
	s.sparse[j] = v
}

// addRun sets v in the run container: absorb into an adjacent span, merge
// two spans it bridges, or insert a fresh span (migrating to dense when
// the span count would pass its break-even).
func (s *Set) addRun(v uint32) {
	j := searchRuns(s.runs, v)
	if j < len(s.runs) && s.runs[j].start <= v {
		return // already inside a span
	}
	prevAdj := j > 0 && s.runs[j-1].end == v
	nextAdj := j < len(s.runs) && s.runs[j].start == v+1
	switch {
	case prevAdj && nextAdj:
		s.runs[j-1].end = s.runs[j].end
		s.runs = append(s.runs[:j], s.runs[j+1:]...)
	case prevAdj:
		s.runs[j-1].end = v + 1
	case nextAdj:
		s.runs[j].start = v
	default:
		if len(s.runs) >= runMax(s.n) {
			s.toDense()
			s.words[v/wordBits] |= 1 << (v % wordBits)
			return
		}
		s.runs = append(s.runs, span{})
		copy(s.runs[j+1:], s.runs[j:])
		s.runs[j] = span{v, v + 1}
	}
}

// Remove clears bit i.
//
//gclint:mutates
func (s *Set) Remove(i int) {
	s.check(i)
	switch s.mode {
	case modeSparse:
		v := uint32(i)
		j := searchU32(s.sparse, v)
		if j < len(s.sparse) && s.sparse[j] == v {
			s.sparse = append(s.sparse[:j], s.sparse[j+1:]...)
		}
	case modeRun:
		s.removeRun(uint32(i))
	default:
		if s.words == nil {
			return
		}
		s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// removeRun clears v in the run container: trim a span edge, drop a
// single-bit span, or split a span in two (migrating to dense when the
// split would pass the span-count break-even).
func (s *Set) removeRun(v uint32) {
	j := searchRuns(s.runs, v)
	if j >= len(s.runs) || s.runs[j].start > v {
		return // not inside any span
	}
	r := s.runs[j]
	switch {
	case r.start == v && r.end == v+1:
		s.runs = append(s.runs[:j], s.runs[j+1:]...)
		if len(s.runs) == 0 {
			s.runs, s.mode = nil, modeSparse
		}
	case r.start == v:
		s.runs[j].start = v + 1
	case r.end == v+1:
		s.runs[j].end = v
	default:
		if len(s.runs) >= runMax(s.n) {
			s.toDense()
			s.words[v/wordBits] &^= 1 << (v % wordBits)
			return
		}
		s.runs[j].end = v
		s.runs = append(s.runs, span{})
		copy(s.runs[j+2:], s.runs[j+1:])
		s.runs[j+1] = span{v + 1, r.end}
	}
}

// Contains reports whether bit i is set.
//
//gclint:noalloc
func (s *Set) Contains(i int) bool {
	s.check(i)
	switch s.mode {
	case modeSparse:
		j := searchU32(s.sparse, uint32(i))
		return j < len(s.sparse) && s.sparse[j] == uint32(i)
	case modeRun:
		j := searchRuns(s.runs, uint32(i))
		return j < len(s.runs) && s.runs[j].start <= uint32(i)
	default:
		if s.words == nil {
			return false
		}
		return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
	}
}

// Count returns the number of set bits.
//
//gclint:noalloc
func (s *Set) Count() int {
	switch s.mode {
	case modeSparse:
		return len(s.sparse)
	case modeRun:
		c := 0
		for _, r := range s.runs {
			c += int(r.end - r.start)
		}
		return c
	default:
		c := 0
		for _, w := range s.words {
			c += bits.OnesCount64(w)
		}
		return c
	}
}

// Empty reports whether no bit is set.
//
//gclint:noalloc
func (s *Set) Empty() bool {
	switch s.mode {
	case modeSparse:
		return len(s.sparse) == 0
	case modeRun:
		return len(s.runs) == 0
	default:
		for _, w := range s.words {
			if w != 0 {
				return false
			}
		}
		return true
	}
}

// Clear resets all bits. Materialized payloads keep their capacity where
// the container allows (dense words are zeroed in place, the sparse slice
// is truncated), so cleared scratch sets rebuild without reallocating.
//
//gclint:mutates
func (s *Set) Clear() {
	switch s.mode {
	case modeSparse:
		s.sparse = s.sparse[:0]
	case modeRun:
		s.runs, s.mode = nil, modeSparse
	default:
		for i := range s.words {
			s.words[i] = 0
		}
	}
}

// SetAll sets every bit in [0, Len()) — a single run span, unless the set
// is already materialized dense (then the words are filled in place so
// scratch reuse stays allocation-free) or the capacity exceeds the run
// container's index range.
//
//gclint:mutates
func (s *Set) SetAll() {
	if s.n == 0 {
		return
	}
	if !fits32(s.n) || (s.mode == modeDense && s.words != nil) {
		s.sparse, s.runs, s.mode = nil, nil, modeDense
		s.materialize()
		for i := range s.words {
			s.words[i] = ^uint64(0)
		}
		s.trimTail()
		return
	}
	s.words, s.sparse = nil, nil
	s.runs = append(s.runs[:0], span{0, uint32(s.n)})
	s.mode = modeRun
}

// trimTail clears the unused high bits of the last word so Count and
// iteration never observe bits beyond the capacity. Dense mode only.
func (s *Set) trimTail() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % wordBits)) - 1
	}
}

// Clone returns a deep copy. Cloning an empty set is O(1): the copy
// shares the lazy nil-payload representation.
func (s *Set) Clone() *Set {
	c := &Set{mode: s.mode, n: s.n}
	switch s.mode {
	case modeSparse:
		if len(s.sparse) > 0 {
			c.sparse = make([]uint32, len(s.sparse))
			copy(c.sparse, s.sparse)
		}
	case modeRun:
		c.runs = make([]span, len(s.runs))
		copy(c.runs, s.runs)
	default:
		if s.words != nil {
			c.words = make([]uint64, len(s.words))
			copy(c.words, s.words)
		}
	}
	return c
}

// Grown returns a deep copy of s with capacity n ≥ s.Len(): existing bits
// keep their positions, new bits start clear. It is how answer sets follow
// a growing dataset — positions are stable, so growth never remaps ids.
// Compact containers grow for free: only their capacity field changes.
func (s *Set) Grown(n int) *Set {
	if n < s.n {
		panic(fmt.Sprintf("bitset: cannot grow capacity %d down to %d", s.n, n))
	}
	c := &Set{mode: s.mode, n: n}
	switch s.mode {
	case modeSparse:
		if len(s.sparse) > 0 {
			c.sparse = make([]uint32, len(s.sparse))
			copy(c.sparse, s.sparse)
		}
	case modeRun:
		c.runs = make([]span, len(s.runs))
		copy(c.runs, s.runs)
	default:
		if s.words == nil {
			return c
		}
		c.words = make([]uint64, (n+wordBits-1)/wordBits)
		copy(c.words, s.words)
	}
	return c
}

func (s *Set) sameCap(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, o.n))
	}
}

// Indices returns the set bits in ascending order.
func (s *Set) Indices() []int {
	return s.AppendIndices(make([]int, 0, s.Count()))
}

// AppendIndices appends the set bits in ascending order to dst and
// returns the extended slice, allocating only when dst lacks capacity.
func (s *Set) AppendIndices(dst []int) []int {
	s.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// Bytes returns the approximate heap footprint of the set in bytes,
// used by the cache's memory accounting. Only the active container's
// payload counts, so migration and Compact change the reported footprint
// — callers that account long-lived sets must recharge after either.
func (s *Set) Bytes() int {
	switch s.mode {
	case modeSparse:
		return 4*len(s.sparse) + 24
	case modeRun:
		return 8*len(s.runs) + 24
	default:
		return 8*len(s.words) + 24
	}
}

// FNV-1a parameters for Fingerprint.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnv64 folds an 8-byte value into an FNV-1a state.
func fnv64(h, v uint64) uint64 {
	for k := 0; k < 8; k++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// Fingerprint returns a 64-bit content hash of the set: FNV-1a over the
// capacity and the boundaries of every maximal run of set bits. It is
// container-independent — Equal sets fingerprint identically whatever
// their current representation — and costs O(runs) for the run container.
// The interning pool keys its buckets on it; collisions are resolved by
// Equal, so the hash only needs to be well-distributed, not perfect.
//
//gclint:noalloc
//gclint:deterministic
func (s *Set) Fingerprint() uint64 {
	h := fnv64(fnvOffset, uint64(s.n))
	switch s.mode {
	case modeSparse:
		i := 0
		for i < len(s.sparse) {
			j := i + 1
			for j < len(s.sparse) && s.sparse[j] == s.sparse[j-1]+1 {
				j++
			}
			h = fnv64(h, uint64(s.sparse[i]))
			h = fnv64(h, uint64(s.sparse[j-1])+1)
			i = j
		}
	case modeRun:
		for _, r := range s.runs {
			h = fnv64(h, uint64(r.start))
			h = fnv64(h, uint64(r.end))
		}
	default:
		start, prev := -1, -2
		for wi, w := range s.words {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				v := wi*wordBits + b
				if v != prev+1 {
					if start >= 0 {
						h = fnv64(h, uint64(start))
						h = fnv64(h, uint64(prev)+1)
					}
					start = v
				}
				prev = v
				w &= w - 1
			}
		}
		if start >= 0 {
			h = fnv64(h, uint64(start))
			h = fnv64(h, uint64(prev)+1)
		}
	}
	return h
}

// String renders the set as a compact index list, e.g. "{1, 4, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
