// Package bitset provides dense, fixed-capacity bitsets over uint64 words.
//
// GraphCache represents answer sets and candidate sets as bitsets indexed by
// dataset-graph position, so the candidate-set algebra of the kernel
// (C = (C_M ∩ ⋂ A(h')) \ S) runs word-parallel. The zero value of Set is an
// empty bitset of capacity 0; use New for a sized one.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset with a fixed capacity chosen at construction.
// Operations that combine two sets require equal capacity and panic
// otherwise: mixing sets over different datasets is a programming error,
// not a runtime condition.
type Set struct {
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for n bits (bit indices 0..n-1).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewFull returns a set of capacity n with all n bits set.
func NewFull(n int) *Set {
	s := New(n)
	s.SetAll()
	return s
}

// FromIndices returns a set of capacity n with exactly the given bits set.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear resets all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// SetAll sets every bit in [0, Len()).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trimTail()
}

// trimTail clears the unused high bits of the last word so Count and
// iteration never observe bits beyond the capacity.
func (s *Set) trimTail() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % wordBits)) - 1
	}
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Grown returns a deep copy of s with capacity n ≥ s.Len(): existing bits
// keep their positions, new bits start clear. It is how answer sets follow
// a growing dataset — positions are stable, so growth never remaps ids.
func (s *Set) Grown(n int) *Set {
	if n < s.n {
		panic(fmt.Sprintf("bitset: cannot grow capacity %d down to %d", s.n, n))
	}
	c := New(n)
	copy(c.words, s.words)
	return c
}

func (s *Set) sameCap(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, o.n))
	}
}

// And intersects s with o in place (s ∩= o).
func (s *Set) And(o *Set) {
	s.sameCap(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// AndNot removes o's bits from s in place (s \= o).
func (s *Set) AndNot(o *Set) {
	s.sameCap(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Or unions o into s in place (s ∪= o).
func (s *Set) Or(o *Set) {
	s.sameCap(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// IntersectionCount returns |s ∩ o| without allocating.
func (s *Set) IntersectionCount(o *Set) int {
	s.sameCap(o)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// DifferenceCount returns |s \ o| without allocating.
func (s *Set) DifferenceCount(o *Set) int {
	s.sameCap(o)
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] &^ o.words[i])
	}
	return c
}

// SubsetOf reports whether every bit of s is also set in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.sameCap(o)
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o have identical capacity and bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the set bits in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Bytes returns the approximate heap footprint of the set in bytes,
// used by the cache's memory accounting.
func (s *Set) Bytes() int {
	return 8*len(s.words) + 24
}

// String renders the set as a compact index list, e.g. "{1, 4, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
