// Package bitset provides dense, fixed-capacity bitsets over uint64 words.
//
// GraphCache represents answer sets and candidate sets as bitsets indexed by
// dataset-graph position, so the candidate-set algebra of the kernel
// (C = (C_M ∩ ⋂ A(h')) \ S) runs word-parallel. The zero value of Set is an
// empty bitset of capacity 0; use New for a sized one.
//
// # Lazy all-zero representation
//
// An all-zero set is represented with a nil word slice: New is O(1) and
// allocation-free in its word storage, and Clone of an all-zero set is O(1).
// The words are materialized on the first mutation that can set a bit (Add,
// SetAll, Or with a non-zero operand). Every operation treats a nil word
// slice as "all bits clear", so the representation is invisible to callers
// — except in Bytes, which correctly reports the smaller footprint. This is
// what makes the empty Excluded/Survivors sets on the cache's exact-hit
// fast path free at any dataset size.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bitset with a fixed capacity chosen at construction.
// Operations that combine two sets require equal capacity and panic
// otherwise: mixing sets over different datasets is a programming error,
// not a runtime condition.
type Set struct {
	// words is the bit storage; nil means every bit is clear (see the
	// package comment). A non-nil slice always has full length for the
	// capacity.
	words []uint64
	n     int // capacity in bits
}

// New returns an empty set with capacity for n bits (bit indices 0..n-1).
// The word storage is allocated lazily on first mutation, so New itself
// costs one small fixed allocation regardless of n.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{n: n}
}

// NewFull returns a set of capacity n with all n bits set.
func NewFull(n int) *Set {
	s := New(n)
	s.SetAll()
	return s
}

// FromIndices returns a set of capacity n with exactly the given bits set.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// materialize allocates the word storage of an all-zero set so a bit can
// be set in place.
func (s *Set) materialize() {
	if s.words == nil {
		s.words = make([]uint64, (s.n+wordBits-1)/wordBits)
	}
}

// Add sets bit i.
//
//gclint:mutates
func (s *Set) Add(i int) {
	s.check(i)
	s.materialize()
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
//
//gclint:mutates
func (s *Set) Remove(i int) {
	s.check(i)
	if s.words == nil {
		return
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set.
//
//gclint:noalloc
func (s *Set) Contains(i int) bool {
	s.check(i)
	if s.words == nil {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
//
//gclint:noalloc
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bit is set.
//
//gclint:noalloc
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear resets all bits.
//
//gclint:mutates
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// SetAll sets every bit in [0, Len()).
//
//gclint:mutates
func (s *Set) SetAll() {
	s.materialize()
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trimTail()
}

// trimTail clears the unused high bits of the last word so Count and
// iteration never observe bits beyond the capacity.
func (s *Set) trimTail() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << (uint(s.n) % wordBits)) - 1
	}
}

// Clone returns a deep copy. Cloning an all-zero set is O(1): the copy
// shares the lazy representation and allocates no word storage.
func (s *Set) Clone() *Set {
	if s.words == nil {
		return &Set{n: s.n}
	}
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// Grown returns a deep copy of s with capacity n ≥ s.Len(): existing bits
// keep their positions, new bits start clear. It is how answer sets follow
// a growing dataset — positions are stable, so growth never remaps ids.
func (s *Set) Grown(n int) *Set {
	if n < s.n {
		panic(fmt.Sprintf("bitset: cannot grow capacity %d down to %d", s.n, n))
	}
	if s.words == nil {
		return &Set{n: n}
	}
	c := &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
	copy(c.words, s.words)
	return c
}

func (s *Set) sameCap(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d != %d", s.n, o.n))
	}
}

// And intersects s with o in place (s ∩= o).
//
//gclint:mutates
func (s *Set) And(o *Set) {
	s.sameCap(o)
	if s.words == nil {
		return // empty ∩ x = empty
	}
	if o.words == nil {
		s.Clear()
		return
	}
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// AndNot removes o's bits from s in place (s \= o).
//
//gclint:mutates
func (s *Set) AndNot(o *Set) {
	s.sameCap(o)
	if s.words == nil || o.words == nil {
		return
	}
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// Or unions o into s in place (s ∪= o).
//
//gclint:mutates
func (s *Set) Or(o *Set) {
	s.sameCap(o)
	if o.words == nil {
		return
	}
	s.materialize()
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// IntersectionCount returns |s ∩ o| without allocating.
//
//gclint:noalloc
func (s *Set) IntersectionCount(o *Set) int {
	s.sameCap(o)
	if s.words == nil || o.words == nil {
		return 0
	}
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// DifferenceCount returns |s \ o| without allocating.
//
//gclint:noalloc
func (s *Set) DifferenceCount(o *Set) int {
	s.sameCap(o)
	if s.words == nil {
		return 0
	}
	if o.words == nil {
		return s.Count()
	}
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] &^ o.words[i])
	}
	return c
}

// SubsetOf reports whether every bit of s is also set in o.
//
//gclint:noalloc
func (s *Set) SubsetOf(o *Set) bool {
	s.sameCap(o)
	if s.words == nil {
		return true
	}
	if o.words == nil {
		return s.Empty()
	}
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o have identical capacity and bits.
//
//gclint:noalloc
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	if s.words == nil {
		return o.Empty()
	}
	if o.words == nil {
		return s.Empty()
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false iteration stops early.
//
//gclint:noalloc
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// ForEachAnd calls fn for every bit set in both s and o (s ∩ o) in
// ascending order, without allocating an intermediate set. If fn returns
// false iteration stops early.
//
//gclint:noalloc
func (s *Set) ForEachAnd(o *Set, fn func(i int) bool) {
	s.sameCap(o)
	if s.words == nil || o.words == nil {
		return
	}
	for wi := range s.words {
		w := s.words[wi] & o.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// ForEachAndNot calls fn for every bit set in s but not in o (s \ o) in
// ascending order, without allocating an intermediate set. If fn returns
// false iteration stops early.
//
//gclint:noalloc
func (s *Set) ForEachAndNot(o *Set, fn func(i int) bool) {
	s.sameCap(o)
	if s.words == nil {
		return
	}
	if o.words == nil {
		s.ForEach(fn)
		return
	}
	for wi := range s.words {
		w := s.words[wi] &^ o.words[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Indices returns the set bits in ascending order.
func (s *Set) Indices() []int {
	return s.AppendIndices(make([]int, 0, s.Count()))
}

// AppendIndices appends the set bits in ascending order to dst and
// returns the extended slice, allocating only when dst lacks capacity.
func (s *Set) AppendIndices(dst []int) []int {
	s.ForEach(func(i int) bool {
		dst = append(dst, i)
		return true
	})
	return dst
}

// Bytes returns the approximate heap footprint of the set in bytes,
// used by the cache's memory accounting.
func (s *Set) Bytes() int {
	return 8*len(s.words) + 24
}

// String renders the set as a compact index list, e.g. "{1, 4, 7}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
