package bitset

import (
	"math/rand"
	"testing"
)

// Tests for the adaptive container machinery: the lazy empty
// representation (nil payload), container migration at the break-even
// thresholds, and the requirement that every binary operation behaves
// identically whatever containers hold its operands.

// denseSet returns a set of capacity n with the given bits, forced into
// the materialized dense representation even when empty.
func denseSet(n int, idx ...int) *Set {
	s := New(n)
	s.toDense()
	s.materialize()
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// payloadFree reports whether the set holds no allocated container
// payload at all — the O(1) empty representation.
func payloadFree(s *Set) bool {
	return s.words == nil && s.sparse == nil && s.runs == nil
}

func TestLazyZeroValueBehavior(t *testing.T) {
	s := New(200)
	if !payloadFree(s) {
		t.Fatal("New should not allocate a payload")
	}
	if s.Count() != 0 || !s.Empty() {
		t.Fatal("lazy set must read as empty")
	}
	if s.Contains(131) {
		t.Fatal("lazy Contains must be false")
	}
	s.Remove(7) // must not materialize or panic
	if !payloadFree(s) {
		t.Fatal("Remove on a lazy set must not materialize")
	}
	s.Clear()
	if !payloadFree(s) {
		t.Fatal("Clear on a lazy set must not materialize")
	}
	c := s.Clone()
	if !payloadFree(c) || c.Len() != 200 {
		t.Fatal("Clone of a lazy set must stay lazy with equal capacity")
	}
	g := s.Grown(300)
	if !payloadFree(g) || g.Len() != 300 {
		t.Fatal("Grown of a lazy set must stay lazy")
	}
	if s.Bytes() >= denseSet(200).Bytes() {
		t.Fatal("lazy set must report a smaller footprint")
	}
}

func TestFullSetIsOneSpan(t *testing.T) {
	for _, n := range []int{1, 64, 100000} {
		s := NewFull(n)
		if s.mode != modeRun || len(s.runs) != 1 {
			t.Fatalf("NewFull(%d) not a single span: mode=%d runs=%d", n, s.mode, len(s.runs))
		}
		if s.Count() != n || !s.isFull() {
			t.Fatalf("NewFull(%d) Count=%d isFull=%v", n, s.Count(), s.isFull())
		}
		if db := denseSet(n).Bytes(); n > 64 && s.Bytes() >= db {
			t.Fatalf("full span of %d bits costs %d bytes >= dense %d", n, s.Bytes(), db)
		}
	}
}

func TestSparseMigratesToDense(t *testing.T) {
	const n = 4096 // sparseMax = 128
	s := New(n)
	for i := 0; i < sparseMax(n); i++ {
		s.Add(i * 3)
	}
	if s.mode != modeSparse {
		t.Fatalf("below threshold should stay sparse, mode=%d", s.mode)
	}
	s.Add(n - 1)
	if s.mode != modeDense {
		t.Fatalf("past threshold should migrate to dense, mode=%d", s.mode)
	}
	if s.Count() != sparseMax(n)+1 || !s.Contains(n-1) || !s.Contains(0) {
		t.Fatal("migration lost bits")
	}
}

func TestRunSplitsMigrateToDense(t *testing.T) {
	const n = 512 // runMax = 8
	s := NewFull(n)
	// Each interior removal splits one span; past runMax the set goes dense.
	for i := 0; i < runMax(n)+2; i++ {
		s.Remove(10 + i*20)
	}
	if s.mode != modeDense {
		t.Fatalf("span splits past runMax should migrate to dense, mode=%d", s.mode)
	}
	if got := s.Count(); got != n-(runMax(n)+2) {
		t.Fatalf("Count after splits = %d", got)
	}
}

func TestDenseDowngradesOnAnd(t *testing.T) {
	const n = 8192
	a, b := denseSet(n), denseSet(n)
	for i := 0; i < n; i += 2 {
		a.Add(i)
	}
	b.Add(100)
	b.Add(101)
	b.toDense()
	a.And(b)
	if a.mode != modeSparse {
		t.Fatalf("And leaving 1 bit should downgrade to sparse, mode=%d", a.mode)
	}
	if a.Count() != 1 || !a.Contains(100) {
		t.Fatalf("downgrade corrupted contents: %s", a)
	}
}

func TestCompactPicksSmallestContainer(t *testing.T) {
	const n = 10000
	sparse := denseSet(n, 1, 500, 9999)
	sparse.Compact()
	if sparse.mode != modeSparse {
		t.Fatalf("3 scattered bits should compact to sparse, mode=%d", sparse.mode)
	}
	nearFull := denseSet(n)
	for i := 0; i < n; i++ {
		nearFull.Add(i)
	}
	nearFull.Remove(5000)
	nearFull.Compact()
	if nearFull.mode != modeRun || len(nearFull.runs) != 2 {
		t.Fatalf("near-full set should compact to 2 spans, mode=%d runs=%d", nearFull.mode, len(nearFull.runs))
	}
	if nearFull.Count() != n-1 || nearFull.Contains(5000) {
		t.Fatal("Compact corrupted contents")
	}
	mid := denseSet(n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n/2; i++ {
		mid.Add(rng.Intn(n))
	}
	before := mid.Count()
	mid.Compact()
	if mid.mode != modeDense {
		t.Fatalf("half-density random set should stay dense, mode=%d", mid.mode)
	}
	if mid.Count() != before {
		t.Fatal("Compact changed the population")
	}
}

func TestFingerprintContainerIndependent(t *testing.T) {
	const n = 300
	mk := func() []*Set {
		a := FromIndices(n, []int{0, 1, 2, 3, 64, 65, 150})
		b := a.Clone()
		b.toDense()
		c := a.Clone()
		c.Compact() // 3 runs × 8 B < 7 idx × 4 B? 24 < 28: run container
		return []*Set{a, b, c}
	}
	sets := mk()
	fp := sets[0].Fingerprint()
	for i, s := range sets {
		if got := s.Fingerprint(); got != fp {
			t.Fatalf("set %d fingerprint %x != %x", i, got, fp)
		}
		if !s.Equal(sets[0]) {
			t.Fatalf("set %d not Equal after conversion", i)
		}
	}
	other := FromIndices(n, []int{0, 1, 2, 3, 64, 65, 151})
	if other.Fingerprint() == fp {
		t.Fatal("different contents should fingerprint differently")
	}
	if New(n).Fingerprint() == NewFull(n).Fingerprint() {
		t.Fatal("empty and full should fingerprint differently")
	}
	if New(100).Fingerprint() == New(101).Fingerprint() {
		t.Fatal("capacity must feed the fingerprint")
	}
}

// mixes builds the same logical set in every container representation.
func mixes(n int, idx ...int) []*Set {
	base := FromIndices(n, idx)
	d := base.Clone()
	d.toDense()
	d.materialize()
	r := base.Clone()
	if len(idx) > 0 {
		r.toRun(len(idx)) // worst-case span count is one per bit
	}
	return []*Set{base, d, r}
}

func TestBinaryOpsAcrossContainerPairs(t *testing.T) {
	const n = 200
	aIdx := []int{0, 1, 2, 3, 50, 51, 52, 120, 199}
	bIdx := []int{2, 3, 4, 51, 52, 53, 121, 199}
	want := map[string]*Set{} // computed once from the dense pair
	ops := []string{"and", "andnot", "or"}
	da, db := denseSet(n, aIdx...), denseSet(n, bIdx...)
	for _, op := range ops {
		w := da.Clone()
		w.toDense()
		switch op {
		case "and":
			w.And(db)
		case "andnot":
			w.AndNot(db)
		case "or":
			w.Or(db)
		}
		want[op] = w
	}
	for ai, a := range mixes(n, aIdx...) {
		for bi, b := range mixes(n, bIdx...) {
			for _, op := range ops {
				got := a.Clone()
				switch op {
				case "and":
					got.And(b)
				case "andnot":
					got.AndNot(b)
				case "or":
					got.Or(b)
				}
				if !got.Equal(want[op]) {
					t.Errorf("a[%d] %s b[%d] = %s, want %s", ai, op, bi, got, want[op])
				}
			}
			if got, w := a.IntersectionCount(b), da.IntersectionCount(db); got != w {
				t.Errorf("a[%d] ∩count b[%d] = %d, want %d", ai, bi, got, w)
			}
			if got, w := a.DifferenceCount(b), da.DifferenceCount(db); got != w {
				t.Errorf("a[%d] \\count b[%d] = %d, want %d", ai, bi, got, w)
			}
			if got, w := a.SubsetOf(b), da.SubsetOf(db); got != w {
				t.Errorf("a[%d] ⊆ b[%d] = %v, want %v", ai, bi, got, w)
			}
			if !a.Equal(da) || !b.Equal(db) {
				t.Errorf("operands mutated by read-only ops")
			}
		}
	}
}

func TestLazyBinaryOpsMatchMaterialized(t *testing.T) {
	const n = 130
	full := denseSet(n, 0, 1, 64, 65, 129)
	cases := []struct{ a, b *Set }{
		{New(n), New(n)},
		{New(n), full},
		{full, New(n)},
		{denseSet(n), New(n)},
		{New(n), denseSet(n)},
		{NewFull(n), full},
		{full, NewFull(n)},
	}
	for i, c := range cases {
		// Reference results computed against fully dense copies.
		am, bm := c.a.Clone(), c.b.Clone()
		am.toDense()
		am.materialize()
		bm.toDense()
		bm.materialize()

		and := c.a.Clone()
		and.And(c.b)
		wantAnd := am.Clone()
		wantAnd.And(bm)
		if !and.Equal(wantAnd) {
			t.Errorf("case %d: And mismatch", i)
		}
		andNot := c.a.Clone()
		andNot.AndNot(c.b)
		wantAndNot := am.Clone()
		wantAndNot.AndNot(bm)
		if !andNot.Equal(wantAndNot) {
			t.Errorf("case %d: AndNot mismatch", i)
		}
		or := c.a.Clone()
		or.Or(c.b)
		wantOr := am.Clone()
		wantOr.Or(bm)
		if !or.Equal(wantOr) {
			t.Errorf("case %d: Or mismatch", i)
		}
		if got, want := c.a.IntersectionCount(c.b), am.IntersectionCount(bm); got != want {
			t.Errorf("case %d: IntersectionCount %d != %d", i, got, want)
		}
		if got, want := c.a.DifferenceCount(c.b), am.DifferenceCount(bm); got != want {
			t.Errorf("case %d: DifferenceCount %d != %d", i, got, want)
		}
		if got, want := c.a.SubsetOf(c.b), am.SubsetOf(bm); got != want {
			t.Errorf("case %d: SubsetOf %v != %v", i, got, want)
		}
		if got, want := c.a.Equal(c.b), am.Equal(bm); got != want {
			t.Errorf("case %d: Equal %v != %v", i, got, want)
		}
	}
}

func TestForEachAndAndNot(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
			}
		}
		// Exercise mixed container pairs: every trial converts one side.
		switch trial % 4 {
		case 1:
			a.toDense()
		case 2:
			b.toDense()
		case 3:
			a.Compact()
			b.toDense()
		}
		wantAnd := a.Clone()
		wantAnd.And(b)
		var gotAnd []int
		a.ForEachAnd(b, func(i int) bool { gotAnd = append(gotAnd, i); return true })
		if len(gotAnd) != wantAnd.Count() {
			t.Fatalf("ForEachAnd visited %d bits, want %d", len(gotAnd), wantAnd.Count())
		}
		for k, i := range gotAnd {
			if !wantAnd.Contains(i) {
				t.Fatalf("ForEachAnd visited %d not in a∩b", i)
			}
			if k > 0 && gotAnd[k-1] >= i {
				t.Fatalf("ForEachAnd out of order: %v", gotAnd)
			}
		}
		wantNot := a.Clone()
		wantNot.AndNot(b)
		var gotNot []int
		a.ForEachAndNot(b, func(i int) bool { gotNot = append(gotNot, i); return true })
		if len(gotNot) != wantNot.Count() {
			t.Fatalf("ForEachAndNot visited %d bits, want %d", len(gotNot), wantNot.Count())
		}
		for k, i := range gotNot {
			if !wantNot.Contains(i) {
				t.Fatalf("ForEachAndNot visited %d not in a\\b", i)
			}
			if k > 0 && gotNot[k-1] >= i {
				t.Fatalf("ForEachAndNot out of order: %v", gotNot)
			}
		}
	}

	// Early stop and lazy operands.
	a := denseSet(n, 1, 2, 3)
	visited := 0
	a.ForEachAndNot(New(n), func(i int) bool { visited++; return visited < 2 })
	if visited != 2 {
		t.Fatalf("early stop visited %d, want 2", visited)
	}
	New(n).ForEachAnd(a, func(i int) bool { t.Fatal("lazy ∩ x must visit nothing"); return false })
}

func TestAppendIndicesReusesBuffer(t *testing.T) {
	s := FromIndices(100, []int{3, 50, 99})
	buf := make([]int, 0, 8)
	out := s.AppendIndices(buf)
	if len(out) != 3 || out[0] != 3 || out[1] != 50 || out[2] != 99 {
		t.Fatalf("AppendIndices = %v", out)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendIndices must reuse the provided buffer's storage")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		buf = s.AppendIndices(buf[:0])
	}); allocs != 0 {
		t.Fatalf("AppendIndices into a sized buffer allocated %v times", allocs)
	}
}

func TestAscendingAddStaysAllocationCheap(t *testing.T) {
	// Ascending construction is the verification-order pattern; the
	// sparse append fast path must not reinsert.
	const n = 100000
	s := New(n)
	for i := 0; i < 20; i++ {
		s.Add(i * 97)
	}
	if s.mode != modeSparse || s.Count() != 20 {
		t.Fatalf("ascending small build: mode=%d count=%d", s.mode, s.Count())
	}
	got := s.Indices()
	for i := range got {
		if got[i] != i*97 {
			t.Fatalf("Indices = %v", got)
		}
	}
}

func TestClearKeepsScratchCapacity(t *testing.T) {
	// The posting-list scratch pattern: build, Clear, rebuild. Dense
	// scratch must stay materialized; sparse scratch keeps its backing.
	s := denseSet(1000, 5, 6, 7)
	s.Clear()
	if s.words == nil {
		t.Fatal("Clear must keep dense words for reuse")
	}
	sp := New(1000)
	sp.Add(3)
	sp.Add(4)
	back := &sp.sparse[:1][0]
	sp.Clear()
	sp.Add(9)
	if &sp.sparse[0] != back {
		t.Fatal("Clear must keep the sparse payload's backing array")
	}
}

func TestRemoveGraphPattern(t *testing.T) {
	// The live-mask lifecycle: full, remove a few, grow, add the new id.
	const n = 1000
	live := NewFull(n)
	live.Remove(17)
	live.Remove(400)
	if live.mode != modeRun || live.Count() != n-2 {
		t.Fatalf("after removals: mode=%d count=%d", live.mode, live.Count())
	}
	grown := live.Grown(n + 1)
	grown.Add(n)
	if grown.Count() != n-1 || !grown.Contains(n) || grown.Contains(400) {
		t.Fatal("grow+add lost bits")
	}
	if grown.mode != modeRun {
		t.Fatalf("near-full mask should stay in the run container, mode=%d", grown.mode)
	}
}
