package bitset

import "math/bits"

// Ascending iteration and membership probing that work over any
// container without allocating: cursor and prober are plain struct
// values the caller keeps on its stack, so the //gclint:noalloc read
// paths (ForEachAnd, SubsetOf, the counting ops) can dispatch across
// container pairs through them instead of materializing a dense copy.

// cursor yields the set bits of one Set in ascending order.
type cursor struct {
	s  *Set
	wi int    // dense: current word index
	w  uint64 // dense: unconsumed bits of words[wi]
	si int    // sparse: next element index; run: current span index
	ri int    // run: next value to yield within runs[si]
}

func (c *cursor) init(s *Set) {
	c.s = s
	c.wi, c.w, c.si, c.ri = -1, 0, 0, 0
	if s.mode == modeRun && len(s.runs) > 0 {
		c.ri = int(s.runs[0].start)
	}
}

// next returns the next set bit in ascending order; ok is false when the
// set is exhausted.
func (c *cursor) next() (i int, ok bool) {
	switch c.s.mode {
	case modeSparse:
		if c.si >= len(c.s.sparse) {
			return 0, false
		}
		v := c.s.sparse[c.si]
		c.si++
		return int(v), true
	case modeRun:
		for c.si < len(c.s.runs) {
			r := c.s.runs[c.si]
			if c.ri < int(r.end) {
				v := c.ri
				c.ri++
				return v, true
			}
			c.si++
			if c.si < len(c.s.runs) {
				c.ri = int(c.s.runs[c.si].start)
			}
		}
		return 0, false
	default:
		for c.w == 0 {
			c.wi++
			if c.wi >= len(c.s.words) {
				return 0, false
			}
			c.w = c.s.words[c.wi]
		}
		b := bits.TrailingZeros64(c.w)
		c.w &= c.w - 1
		return c.wi*wordBits + b, true
	}
}

// prober answers membership queries for a monotonically ascending probe
// sequence in amortized O(1) per probe for the compact containers: the
// position hint only ever moves forward, so a full sweep costs O(payload)
// total, not O(payload · probes).
type prober struct {
	s  *Set
	si int // sparse: element hint; run: span hint
}

// contains reports whether i is set. Successive calls must pass
// non-decreasing i.
func (p *prober) contains(i int) bool {
	switch p.s.mode {
	case modeSparse:
		sp := p.s.sparse
		for p.si < len(sp) && sp[p.si] < uint32(i) {
			p.si++
		}
		return p.si < len(sp) && sp[p.si] == uint32(i)
	case modeRun:
		rs := p.s.runs
		for p.si < len(rs) && int(rs[p.si].end) <= i {
			p.si++
		}
		return p.si < len(rs) && int(rs[p.si].start) <= i
	default:
		if p.s.words == nil {
			return false
		}
		return p.s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
	}
}
