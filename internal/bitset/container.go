package bitset

import "math/bits"

// Container break-evens, in elements. The dense payload costs
// 8·⌈n/64⌉ ≈ n/8 bytes; a sparse element costs 4 bytes, a run span 8.
// The floors keep tiny capacities from migrating on their first bits.

// sparseMax is the population ceiling of the sparse container for
// capacity n: above n/32 elements, 4-byte indices cost more than the
// dense words would.
func sparseMax(n int) int {
	return max(16, n/32)
}

// runMax is the span-count ceiling of the run container for capacity n:
// above n/64 spans, 8-byte spans cost more than the dense words would.
func runMax(n int) int {
	return max(4, n/64)
}

// shrinkDense downgrades a dense set whose population (just computed by a
// fused And/AndNot word loop) sits at half the sparse break-even or less.
// The hysteresis gap keeps sets oscillating around the threshold from
// churning between containers.
func (s *Set) shrinkDense(count int) {
	if fits32(s.n) && count*2 <= sparseMax(s.n) {
		s.toSparse(count)
	}
}

// toDense re-encodes any container as dense words.
func (s *Set) toDense() {
	switch s.mode {
	case modeSparse:
		w := make([]uint64, (s.n+wordBits-1)/wordBits)
		for _, v := range s.sparse {
			w[v/wordBits] |= 1 << (v % wordBits)
		}
		s.words, s.sparse, s.mode = w, nil, modeDense
	case modeRun:
		w := make([]uint64, (s.n+wordBits-1)/wordBits)
		for _, r := range s.runs {
			fillRange(w, r.start, r.end)
		}
		s.words, s.runs, s.mode = w, nil, modeDense
	default:
		s.materialize()
	}
}

// toSparse re-encodes a dense or run set holding count bits as sparse.
// The caller guarantees count is the exact population.
func (s *Set) toSparse(count int) {
	out := make([]uint32, 0, count)
	switch s.mode {
	case modeSparse:
		return
	case modeRun:
		for _, r := range s.runs {
			for v := r.start; v < r.end; v++ {
				out = append(out, v)
			}
		}
		s.runs = nil
	default:
		for wi, w := range s.words {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				out = append(out, uint32(wi*wordBits+b))
				w &= w - 1
			}
		}
		s.words = nil
	}
	s.sparse, s.mode = out, modeSparse
}

// toRun re-encodes a dense or sparse set with nruns maximal runs as the
// run container. The caller guarantees nruns > 0 and within runMax-ish
// bounds it considers acceptable (Compact computes it exactly).
func (s *Set) toRun(nruns int) {
	out := make([]span, 0, nruns)
	switch s.mode {
	case modeRun:
		return
	case modeSparse:
		for _, v := range s.sparse {
			if k := len(out); k > 0 && out[k-1].end == v {
				out[k-1].end = v + 1
			} else {
				out = append(out, span{v, v + 1})
			}
		}
		s.sparse = nil
	default:
		for wi, w := range s.words {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				v := uint32(wi*wordBits + b)
				if k := len(out); k > 0 && out[k-1].end == v {
					out[k-1].end = v + 1
				} else {
					out = append(out, span{v, v + 1})
				}
				w &= w - 1
			}
		}
		s.words = nil
	}
	if len(out) == 0 {
		s.runs, s.mode = nil, modeSparse
		return
	}
	s.runs, s.mode = out, modeRun
}

// normRuns restores the run-container invariants after a span-algebra
// operation: an empty result collapses to the empty sparse set, and a
// result past the span break-even migrates to dense.
func (s *Set) normRuns() {
	if len(s.runs) == 0 {
		s.runs, s.mode = nil, modeSparse
		return
	}
	s.mode = modeRun
	s.words, s.sparse = nil, nil
	if len(s.runs) > runMax(s.n) {
		s.toDense()
	}
}

// Compact re-encodes the set in its smallest container: whichever of
// sparse (4 B/bit), run (8 B/span) or dense (8 B/word) costs the fewest
// payload bytes for the current contents. Publication points — entry
// admission, the interning pool, persistence restore — call it so every
// long-lived set pays the minimal footprint; scratch sets skip it and
// keep their mutation-friendly container. Contents are unchanged.
//
//gclint:mutates
func (s *Set) Compact() {
	if !fits32(s.n) {
		return
	}
	count, nruns := s.shape()
	if count == 0 {
		s.words, s.sparse, s.runs, s.mode = nil, nil, nil, modeSparse
		return
	}
	denseB := 8 * ((s.n + wordBits - 1) / wordBits)
	sparseB := 4 * count
	runB := 8 * nruns
	switch {
	case runB <= sparseB && runB <= denseB:
		s.toRun(nruns)
	case sparseB <= denseB:
		s.toSparse(count)
	default:
		s.toDense()
	}
}

// shape returns the population and the number of maximal runs of set
// bits in one pass over the active container.
//
//gclint:noalloc
func (s *Set) shape() (count, nruns int) {
	switch s.mode {
	case modeSparse:
		count = len(s.sparse)
		for i, v := range s.sparse {
			if i == 0 || s.sparse[i-1]+1 != v {
				nruns++
			}
		}
	case modeRun:
		nruns = len(s.runs)
		for _, r := range s.runs {
			count += int(r.end - r.start)
		}
	default:
		prev := false
		for _, w := range s.words {
			count += bits.OnesCount64(w)
			starts := w &^ (w << 1)
			if prev {
				starts &^= 1
			}
			nruns += bits.OnesCount64(starts)
			prev = w>>63 == 1
		}
	}
	return count, nruns
}

// searchU32 returns the first index j with a[j] >= v (len(a) if none).
//
//gclint:noalloc
func searchU32(a []uint32, v uint32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchRuns returns the first span index j with rs[j].end > v (len(rs)
// if none) — the only span that could contain v.
//
//gclint:noalloc
func searchRuns(rs []span, v uint32) int {
	lo, hi := 0, len(rs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if rs[mid].end <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// fillRange sets bits [start, end) in a dense word array.
func fillRange(w []uint64, start, end uint32) {
	if start >= end {
		return
	}
	sw, ew := int(start/wordBits), int((end-1)/wordBits)
	sm := ^uint64(0) << (start % wordBits)
	em := ^uint64(0) >> (wordBits - 1 - (end-1)%wordBits)
	if sw == ew {
		w[sw] |= sm & em
		return
	}
	w[sw] |= sm
	for i := sw + 1; i < ew; i++ {
		w[i] = ^uint64(0)
	}
	w[ew] |= em
}

// zeroRange clears bits [start, end) in a dense word array.
func zeroRange(w []uint64, start, end uint32) {
	if start >= end {
		return
	}
	sw, ew := int(start/wordBits), int((end-1)/wordBits)
	sm := ^uint64(0) << (start % wordBits)
	em := ^uint64(0) >> (wordBits - 1 - (end-1)%wordBits)
	if sw == ew {
		w[sw] &^= sm & em
		return
	}
	w[sw] &^= sm
	for i := sw + 1; i < ew; i++ {
		w[i] = 0
	}
	w[ew] &^= em
}

// intersectRuns returns a ∩ b as a fresh normalized span list.
func intersectRuns(a, b []span) []span {
	var out []span
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max(a[i].start, b[j].start)
		hi := min(a[i].end, b[j].end)
		if lo < hi {
			out = append(out, span{lo, hi})
		}
		if a[i].end < b[j].end {
			i++
		} else {
			j++
		}
	}
	return out
}

// subtractRuns returns a \ b as a fresh normalized span list.
func subtractRuns(a, b []span) []span {
	var out []span
	j := 0
	for _, r := range a {
		lo := r.start
		for j < len(b) && b[j].end <= lo {
			j++
		}
		for jj := j; lo < r.end && jj < len(b) && b[jj].start < r.end; jj++ {
			if b[jj].start > lo {
				out = append(out, span{lo, b[jj].start})
			}
			if b[jj].end > lo {
				lo = b[jj].end
			}
		}
		if lo < r.end {
			out = append(out, span{lo, r.end})
		}
	}
	return out
}

// unionRuns returns a ∪ b as a fresh normalized span list, coalescing
// overlapping and adjacent spans.
func unionRuns(a, b []span) []span {
	out := make([]span, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var r span
		if j >= len(b) || (i < len(a) && a[i].start <= b[j].start) {
			r = a[i]
			i++
		} else {
			r = b[j]
			j++
		}
		if k := len(out); k > 0 && out[k-1].end >= r.start {
			if r.end > out[k-1].end {
				out[k-1].end = r.end
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}
