package bitset

import "math/bits"

// Binary operations, specialized per container pair. Dense×dense keeps
// the word-parallel loops (with the population count fused in where a
// downgrade decision rides on it); every pair involving a compact
// container routes through the cursor/prober machinery so the cost is
// O(set payloads), never O(capacity). Full-run operands short-circuit:
// x ∩ full = x and x ∪ full = full at any capacity.

// quickEmpty reports emptiness without scanning dense words: a nil word
// slice is the lazy all-clear dense set; a materialized-but-zero dense
// set answers false, which only costs the fast path, never correctness.
//
//gclint:noalloc
func (s *Set) quickEmpty() bool {
	switch s.mode {
	case modeSparse:
		return len(s.sparse) == 0
	case modeRun:
		return len(s.runs) == 0
	default:
		return s.words == nil
	}
}

// isFull reports whether the set is the single full span [0, n). Dense
// all-ones sets answer false — only the canonical run form is detected,
// which is what NewFull and SetAll produce.
//
//gclint:noalloc
func (s *Set) isFull() bool {
	return s.mode == modeRun && len(s.runs) == 1 &&
		s.runs[0].start == 0 && int(s.runs[0].end) == s.n
}

// iterRank orders containers by iteration cost: the compact containers
// visit only set bits, dense scans every word. Symmetric operations
// iterate the lower-ranked operand and probe the other.
//
//gclint:noalloc
func iterRank(s *Set) int {
	switch s.mode {
	case modeSparse:
		return 0
	case modeRun:
		return 1
	default:
		return 2
	}
}

// becomeCopyOf overwrites s with a deep copy of o's contents.
func (s *Set) becomeCopyOf(o *Set) {
	s.mode = o.mode
	s.words, s.sparse, s.runs = nil, nil, nil
	switch o.mode {
	case modeSparse:
		if len(o.sparse) > 0 {
			s.sparse = make([]uint32, len(o.sparse))
			copy(s.sparse, o.sparse)
		}
	case modeRun:
		s.runs = make([]span, len(o.runs))
		copy(s.runs, o.runs)
	default:
		if o.words != nil {
			s.words = make([]uint64, len(o.words))
			copy(s.words, o.words)
		}
	}
}

// And intersects s with o in place (s ∩= o).
//
//gclint:mutates
func (s *Set) And(o *Set) {
	s.sameCap(o)
	if s.quickEmpty() || o.isFull() {
		return
	}
	if o.quickEmpty() {
		s.Clear()
		return
	}
	if s.isFull() {
		s.becomeCopyOf(o)
		return
	}
	switch s.mode {
	case modeSparse:
		p := prober{s: o}
		k := 0
		for _, v := range s.sparse {
			if p.contains(int(v)) {
				s.sparse[k] = v
				k++
			}
		}
		s.sparse = s.sparse[:k]
	case modeRun:
		switch o.mode {
		case modeRun:
			s.runs = intersectRuns(s.runs, o.runs)
			s.normRuns()
		case modeSparse:
			// The result is a subset of o, so it lands sparse.
			out := make([]uint32, 0, len(o.sparse))
			p := prober{s: s}
			for _, v := range o.sparse {
				if p.contains(int(v)) {
					out = append(out, v)
				}
			}
			s.runs, s.sparse, s.mode = nil, out, modeSparse
		default:
			s.toDense()
			s.And(o)
		}
	default:
		switch o.mode {
		case modeDense:
			c := 0
			for i := range s.words {
				s.words[i] &= o.words[i]
				c += bits.OnesCount64(s.words[i])
			}
			s.shrinkDense(c)
		case modeSparse:
			out := make([]uint32, 0, len(o.sparse))
			for _, v := range o.sparse {
				if s.words[v/wordBits]&(1<<(v%wordBits)) != 0 {
					out = append(out, v)
				}
			}
			s.words, s.sparse, s.mode = nil, out, modeSparse
		default:
			// Zero the gaps between o's spans.
			prev := uint32(0)
			for _, r := range o.runs {
				zeroRange(s.words, prev, r.start)
				prev = r.end
			}
			zeroRange(s.words, prev, uint32(s.n))
		}
	}
}

// AndNot removes o's bits from s in place (s \= o).
//
//gclint:mutates
func (s *Set) AndNot(o *Set) {
	s.sameCap(o)
	if s.quickEmpty() || o.quickEmpty() {
		return
	}
	if o.isFull() {
		s.Clear()
		return
	}
	switch s.mode {
	case modeSparse:
		p := prober{s: o}
		k := 0
		for _, v := range s.sparse {
			if !p.contains(int(v)) {
				s.sparse[k] = v
				k++
			}
		}
		s.sparse = s.sparse[:k]
	case modeRun:
		switch o.mode {
		case modeSparse:
			// Each removal trims or splits one span; Remove re-dispatches
			// if a split migrates the receiver to dense mid-loop.
			for _, v := range o.sparse {
				s.Remove(int(v))
			}
		case modeRun:
			s.runs = subtractRuns(s.runs, o.runs)
			s.normRuns()
		default:
			s.toDense()
			s.AndNot(o)
		}
	default:
		switch o.mode {
		case modeDense:
			c := 0
			for i := range s.words {
				s.words[i] &^= o.words[i]
				c += bits.OnesCount64(s.words[i])
			}
			s.shrinkDense(c)
		case modeSparse:
			for _, v := range o.sparse {
				s.words[v/wordBits] &^= 1 << (v % wordBits)
			}
		default:
			for _, r := range o.runs {
				zeroRange(s.words, r.start, r.end)
			}
		}
	}
}

// Or unions o into s in place (s ∪= o).
//
//gclint:mutates
func (s *Set) Or(o *Set) {
	s.sameCap(o)
	if o.quickEmpty() || s.isFull() {
		return
	}
	if o.isFull() {
		s.SetAll()
		return
	}
	if s.quickEmpty() {
		s.becomeCopyOf(o)
		return
	}
	switch s.mode {
	case modeSparse:
		if o.mode == modeSparse {
			s.sparse = mergeU32(s.sparse, o.sparse)
			if len(s.sparse) > sparseMax(s.n) {
				s.toDense()
			}
			return
		}
		s.toDense()
		s.Or(o)
	case modeRun:
		if o.mode == modeRun {
			s.runs = unionRuns(s.runs, o.runs)
			s.normRuns()
			return
		}
		s.toDense()
		s.Or(o)
	default:
		switch o.mode {
		case modeSparse:
			for _, v := range o.sparse {
				s.words[v/wordBits] |= 1 << (v % wordBits)
			}
		case modeRun:
			for _, r := range o.runs {
				fillRange(s.words, r.start, r.end)
			}
		default:
			for i := range s.words {
				s.words[i] |= o.words[i]
			}
		}
	}
}

// mergeU32 returns the sorted union of two sorted unique slices.
func mergeU32(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// IntersectionCount returns |s ∩ o| without allocating.
//
//gclint:noalloc
func (s *Set) IntersectionCount(o *Set) int {
	s.sameCap(o)
	if s.mode == modeDense && o.mode == modeDense {
		if s.words == nil || o.words == nil {
			return 0
		}
		c := 0
		for i := range s.words {
			c += bits.OnesCount64(s.words[i] & o.words[i])
		}
		return c
	}
	a, b := s, o
	if iterRank(o) < iterRank(s) {
		a, b = o, s
	}
	var cur cursor
	cur.init(a)
	p := prober{s: b}
	c := 0
	for i, ok := cur.next(); ok; i, ok = cur.next() {
		if p.contains(i) {
			c++
		}
	}
	return c
}

// DifferenceCount returns |s \ o| without allocating.
//
//gclint:noalloc
func (s *Set) DifferenceCount(o *Set) int {
	s.sameCap(o)
	if s.mode == modeDense && o.mode == modeDense {
		if s.words == nil {
			return 0
		}
		if o.words == nil {
			return s.Count()
		}
		c := 0
		for i := range s.words {
			c += bits.OnesCount64(s.words[i] &^ o.words[i])
		}
		return c
	}
	var cur cursor
	cur.init(s)
	p := prober{s: o}
	c := 0
	for i, ok := cur.next(); ok; i, ok = cur.next() {
		if !p.contains(i) {
			c++
		}
	}
	return c
}

// SubsetOf reports whether every bit of s is also set in o.
//
//gclint:noalloc
func (s *Set) SubsetOf(o *Set) bool {
	s.sameCap(o)
	if o.isFull() {
		return true
	}
	if s.mode == modeDense && o.mode == modeDense {
		if s.words == nil {
			return true
		}
		if o.words == nil {
			return s.Empty()
		}
		for i := range s.words {
			if s.words[i]&^o.words[i] != 0 {
				return false
			}
		}
		return true
	}
	var cur cursor
	cur.init(s)
	p := prober{s: o}
	for i, ok := cur.next(); ok; i, ok = cur.next() {
		if !p.contains(i) {
			return false
		}
	}
	return true
}

// Equal reports whether s and o have identical capacity and bits,
// whatever containers currently hold them.
//
//gclint:noalloc
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	if s.mode == modeDense && o.mode == modeDense {
		if s.words == nil {
			return o.Empty()
		}
		if o.words == nil {
			return s.Empty()
		}
		for i := range s.words {
			if s.words[i] != o.words[i] {
				return false
			}
		}
		return true
	}
	var ca, cb cursor
	ca.init(s)
	cb.init(o)
	for {
		va, oka := ca.next()
		vb, okb := cb.next()
		if oka != okb {
			return false
		}
		if !oka {
			return true
		}
		if va != vb {
			return false
		}
	}
}

// ForEach calls fn for every set bit in ascending order. If fn returns
// false iteration stops early.
//
//gclint:noalloc
func (s *Set) ForEach(fn func(i int) bool) {
	switch s.mode {
	case modeSparse:
		for _, v := range s.sparse {
			if !fn(int(v)) {
				return
			}
		}
	case modeRun:
		for _, r := range s.runs {
			for v := r.start; v < r.end; v++ {
				if !fn(int(v)) {
					return
				}
			}
		}
	default:
		for wi, w := range s.words {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				if !fn(wi*wordBits + b) {
					return
				}
				w &= w - 1
			}
		}
	}
}

// ForEachAnd calls fn for every bit set in both s and o (s ∩ o) in
// ascending order, without allocating an intermediate set. If fn returns
// false iteration stops early.
//
//gclint:noalloc
func (s *Set) ForEachAnd(o *Set, fn func(i int) bool) {
	s.sameCap(o)
	if s.mode == modeDense && o.mode == modeDense {
		if s.words == nil || o.words == nil {
			return
		}
		for wi := range s.words {
			w := s.words[wi] & o.words[wi]
			for w != 0 {
				b := bits.TrailingZeros64(w)
				if !fn(wi*wordBits + b) {
					return
				}
				w &= w - 1
			}
		}
		return
	}
	a, b := s, o
	if iterRank(o) < iterRank(s) {
		a, b = o, s
	}
	var cur cursor
	cur.init(a)
	p := prober{s: b}
	for i, ok := cur.next(); ok; i, ok = cur.next() {
		if p.contains(i) && !fn(i) {
			return
		}
	}
}

// ForEachAndNot calls fn for every bit set in s but not in o (s \ o) in
// ascending order, without allocating an intermediate set. If fn returns
// false iteration stops early.
//
//gclint:noalloc
func (s *Set) ForEachAndNot(o *Set, fn func(i int) bool) {
	s.sameCap(o)
	if s.mode == modeDense && o.mode == modeDense {
		if s.words == nil {
			return
		}
		if o.words == nil {
			s.ForEach(fn)
			return
		}
		for wi := range s.words {
			w := s.words[wi] &^ o.words[wi]
			for w != 0 {
				b := bits.TrailingZeros64(w)
				if !fn(wi*wordBits + b) {
					return
				}
				w &= w - 1
			}
		}
		return
	}
	var cur cursor
	cur.init(s)
	p := prober{s: o}
	for i, ok := cur.next(); ok; i, ok = cur.next() {
		if !p.contains(i) {
			if !fn(i) {
				return
			}
		}
	}
}
