package bitset

import (
	"bytes"
	"fmt"
	"testing"
)

// FuzzBitsetOps drives a random operation sequence against two adaptive
// sets and a deliberately naive []bool reference implementation, checking
// after every step that Indices, Count, Contains, SubsetOf, Equal and the
// counting ops agree — whatever container mix the sequence has migrated
// the sets into. The byte stream encodes (capacity, then op+operand
// pairs), so the corpus doubles as a library of migration scenarios:
// sparse→dense upgrades, run splits, fused-And downgrades, Compact
// round-trips and cross-container binary ops.

// refBits is the reference model: one bool per bit, no containers, no
// laziness, nothing shared with the implementation under test.
type refBits struct{ bits []bool }

func newRef(n int) *refBits { return &refBits{bits: make([]bool, n)} }

func (r *refBits) clone() *refBits {
	c := newRef(len(r.bits))
	copy(c.bits, r.bits)
	return c
}

func (r *refBits) grown(n int) *refBits {
	c := newRef(n)
	copy(c.bits, r.bits)
	return c
}

func (r *refBits) indices() []int {
	var out []int
	for i, b := range r.bits {
		if b {
			out = append(out, i)
		}
	}
	return out
}

func (r *refBits) equal(o *refBits) bool {
	if len(r.bits) != len(o.bits) {
		return false
	}
	for i := range r.bits {
		if r.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

func (r *refBits) subsetOf(o *refBits) bool {
	for i := range r.bits {
		if r.bits[i] && !o.bits[i] {
			return false
		}
	}
	return true
}

func (r *refBits) interCount(o *refBits) int {
	c := 0
	for i := range r.bits {
		if r.bits[i] && o.bits[i] {
			c++
		}
	}
	return c
}

func (r *refBits) diffCount(o *refBits) int {
	c := 0
	for i := range r.bits {
		if r.bits[i] && !o.bits[i] {
			c++
		}
	}
	return c
}

// checkAgainstRef asserts every read-path agreement between a Set and
// its reference twin.
func checkAgainstRef(t *testing.T, step int, s *Set, r *refBits) {
	t.Helper()
	if s.Len() != len(r.bits) {
		t.Fatalf("step %d: Len %d != %d", step, s.Len(), len(r.bits))
	}
	want := r.indices()
	got := s.Indices()
	if len(got) != len(want) {
		t.Fatalf("step %d: Indices %v != %v (mode=%d)", step, got, want, s.mode)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: Indices %v != %v (mode=%d)", step, got, want, s.mode)
		}
	}
	if s.Count() != len(want) {
		t.Fatalf("step %d: Count %d != %d (mode=%d)", step, s.Count(), len(want), s.mode)
	}
	if s.Empty() != (len(want) == 0) {
		t.Fatalf("step %d: Empty mismatch", step)
	}
	for _, i := range want {
		if !s.Contains(i) {
			t.Fatalf("step %d: Contains(%d) false for a set bit", step, i)
		}
	}
}

func fuzzOps(t *testing.T, data []byte) {
	if len(data) < 2 {
		return
	}
	n := 1 + int(data[0])<<2 // capacities 1..1021 cross word and threshold edges
	a, b := New(n), New(n)
	ra, rb := newRef(n), newRef(n)
	data = data[1:]
	for step := 0; step+1 < len(data); step += 2 {
		op, arg := data[step], int(data[step+1])
		i := arg * n / 256 // scale the operand byte into [0, n)
		switch op % 12 {
		case 0:
			a.Add(i)
			ra.bits[i] = true
		case 1:
			a.Remove(i)
			ra.bits[i] = false
		case 2:
			b.Add(i)
			rb.bits[i] = true
		case 3:
			b.Remove(i)
			rb.bits[i] = false
		case 4:
			a.And(b)
			for k := range ra.bits {
				ra.bits[k] = ra.bits[k] && rb.bits[k]
			}
		case 5:
			a.AndNot(b)
			for k := range ra.bits {
				ra.bits[k] = ra.bits[k] && !rb.bits[k]
			}
		case 6:
			a.Or(b)
			for k := range ra.bits {
				ra.bits[k] = ra.bits[k] || rb.bits[k]
			}
		case 7:
			a.Clear()
			ra = newRef(n)
		case 8:
			a.SetAll()
			for k := range ra.bits {
				ra.bits[k] = true
			}
		case 9:
			a = a.Clone()
			ra = ra.clone()
		case 10:
			a.Compact()
		case 11:
			a, b = b, a
			ra, rb = rb, ra
		}
		checkAgainstRef(t, step, a, ra)
		checkAgainstRef(t, step, b, rb)
		if got, want := a.SubsetOf(b), ra.subsetOf(rb); got != want {
			t.Fatalf("step %d: SubsetOf %v != %v (modes %d,%d)", step, got, want, a.mode, b.mode)
		}
		if got, want := a.Equal(b), ra.equal(rb); got != want {
			t.Fatalf("step %d: Equal %v != %v (modes %d,%d)", step, got, want, a.mode, b.mode)
		}
		if got, want := a.IntersectionCount(b), ra.interCount(rb); got != want {
			t.Fatalf("step %d: IntersectionCount %d != %d (modes %d,%d)", step, got, want, a.mode, b.mode)
		}
		if got, want := a.DifferenceCount(b), ra.diffCount(rb); got != want {
			t.Fatalf("step %d: DifferenceCount %d != %d (modes %d,%d)", step, got, want, a.mode, b.mode)
		}
		if ra.equal(rb) != (a.Fingerprint() == b.Fingerprint()) {
			// Equal contents must collide; a fingerprint collision on
			// unequal contents is possible in principle but at 2^-64 it
			// is a bug in practice for these tiny inputs.
			t.Fatalf("step %d: Fingerprint/Equal disagree", step)
		}
	}
	// Growth must preserve every bit position under any container.
	g := a.Grown(n + 17)
	rg := ra.grown(n + 17)
	g.Add(n + 3)
	rg.bits[n+3] = true
	checkAgainstRef(t, -1, g, rg)
}

func FuzzBitsetOps(f *testing.F) {
	// Seeds cover each container's migration edges; the committed corpus
	// under testdata/fuzz/FuzzBitsetOps extends them with found cases.
	ascending := []byte{16} // small capacity, ascending sparse build
	for i := 0; i < 40; i++ {
		ascending = append(ascending, 0, byte(i*6))
	}
	f.Add(ascending)
	full := []byte{255, 8, 0} // SetAll then interior removals: run splits
	for i := 0; i < 20; i++ {
		full = append(full, 1, byte(i*12+5))
	}
	f.Add(full)
	var mixed []byte
	mixed = append(mixed, 64)
	for i := 0; i < 30; i++ {
		mixed = append(mixed, byte(i*7), byte(i*31))
	}
	f.Add(mixed)
	f.Add([]byte{4, 8, 0, 2, 100, 4, 0, 10, 0, 5, 0, 6, 0, 11, 0, 9, 0})
	f.Fuzz(fuzzOps)
}

// TestFuzzSeedsReplay keeps the seed scenarios in the plain `go test`
// suite with readable failures, independent of fuzzing support.
func TestFuzzSeedsReplay(t *testing.T) {
	var seqs [][]byte
	ascending := []byte{16}
	for i := 0; i < 40; i++ {
		ascending = append(ascending, 0, byte(i*6))
	}
	seqs = append(seqs, ascending)
	rng := []byte{200}
	x := uint32(2463534242)
	for i := 0; i < 200; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		rng = append(rng, byte(x), byte(x>>8))
	}
	seqs = append(seqs, rng)
	for i, s := range seqs {
		t.Run(fmt.Sprint(i), func(t *testing.T) { fuzzOps(t, bytes.Clone(s)) })
	}
}
