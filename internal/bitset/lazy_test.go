package bitset

import (
	"math/rand"
	"testing"
)

// Tests for the lazy all-zero representation (nil word slice) and the
// allocation-free iteration helpers. Every binary operation must behave
// identically whether either operand is lazy or materialized.

// materialized returns a set of capacity n with the given bits, forced
// into the materialized representation even when empty.
func materialized(n int, idx ...int) *Set {
	s := New(n)
	s.materialize()
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

func TestLazyZeroValueBehavior(t *testing.T) {
	s := New(200)
	if s.words != nil {
		t.Fatal("New should not materialize words")
	}
	if s.Count() != 0 || !s.Empty() {
		t.Fatal("lazy set must read as empty")
	}
	if s.Contains(131) {
		t.Fatal("lazy Contains must be false")
	}
	s.Remove(7) // must not materialize or panic
	if s.words != nil {
		t.Fatal("Remove on a lazy set must not materialize")
	}
	s.Clear()
	if s.words != nil {
		t.Fatal("Clear on a lazy set must not materialize")
	}
	c := s.Clone()
	if c.words != nil || c.Len() != 200 {
		t.Fatal("Clone of a lazy set must stay lazy with equal capacity")
	}
	g := s.Grown(300)
	if g.words != nil || g.Len() != 300 {
		t.Fatal("Grown of a lazy set must stay lazy")
	}
	if s.Bytes() >= materialized(200).Bytes() {
		t.Fatal("lazy set must report a smaller footprint")
	}
}

func TestLazyMaterializesOnMutation(t *testing.T) {
	s := New(100)
	s.Add(63)
	if s.words == nil || !s.Contains(63) || s.Count() != 1 {
		t.Fatal("Add must materialize and set the bit")
	}
	s2 := New(100)
	s2.SetAll()
	if s2.Count() != 100 {
		t.Fatal("SetAll must materialize all bits")
	}
	s3 := New(100)
	s3.Or(s)
	if !s3.Contains(63) || s3.Count() != 1 {
		t.Fatal("Or with non-zero operand must materialize")
	}
}

func TestLazyBinaryOpsMatchMaterialized(t *testing.T) {
	const n = 130
	full := materialized(n, 0, 1, 64, 65, 129)
	cases := []struct{ a, b *Set }{
		{New(n), New(n)},
		{New(n), full},
		{full, New(n)},
		{materialized(n), New(n)},
		{New(n), materialized(n)},
	}
	for i, c := range cases {
		// Reference results computed against fully materialized copies.
		am, bm := c.a.Clone(), c.b.Clone()
		am.materialize()
		bm.materialize()

		and := c.a.Clone()
		and.And(c.b)
		wantAnd := am.Clone()
		wantAnd.And(bm)
		if !and.Equal(wantAnd) {
			t.Errorf("case %d: And mismatch", i)
		}
		andNot := c.a.Clone()
		andNot.AndNot(c.b)
		wantAndNot := am.Clone()
		wantAndNot.AndNot(bm)
		if !andNot.Equal(wantAndNot) {
			t.Errorf("case %d: AndNot mismatch", i)
		}
		or := c.a.Clone()
		or.Or(c.b)
		wantOr := am.Clone()
		wantOr.Or(bm)
		if !or.Equal(wantOr) {
			t.Errorf("case %d: Or mismatch", i)
		}
		if got, want := c.a.IntersectionCount(c.b), am.IntersectionCount(bm); got != want {
			t.Errorf("case %d: IntersectionCount %d != %d", i, got, want)
		}
		if got, want := c.a.DifferenceCount(c.b), am.DifferenceCount(bm); got != want {
			t.Errorf("case %d: DifferenceCount %d != %d", i, got, want)
		}
		if got, want := c.a.SubsetOf(c.b), am.SubsetOf(bm); got != want {
			t.Errorf("case %d: SubsetOf %v != %v", i, got, want)
		}
		if got, want := c.a.Equal(c.b), am.Equal(bm); got != want {
			t.Errorf("case %d: Equal %v != %v", i, got, want)
		}
	}
}

func TestForEachAndAndNot(t *testing.T) {
	const n = 200
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
			}
		}
		wantAnd := a.Clone()
		wantAnd.And(b)
		var gotAnd []int
		a.ForEachAnd(b, func(i int) bool { gotAnd = append(gotAnd, i); return true })
		if len(gotAnd) != wantAnd.Count() {
			t.Fatalf("ForEachAnd visited %d bits, want %d", len(gotAnd), wantAnd.Count())
		}
		for _, i := range gotAnd {
			if !wantAnd.Contains(i) {
				t.Fatalf("ForEachAnd visited %d not in a∩b", i)
			}
		}
		wantNot := a.Clone()
		wantNot.AndNot(b)
		var gotNot []int
		a.ForEachAndNot(b, func(i int) bool { gotNot = append(gotNot, i); return true })
		if len(gotNot) != wantNot.Count() {
			t.Fatalf("ForEachAndNot visited %d bits, want %d", len(gotNot), wantNot.Count())
		}
		for _, i := range gotNot {
			if !wantNot.Contains(i) {
				t.Fatalf("ForEachAndNot visited %d not in a\\b", i)
			}
		}
	}

	// Early stop and lazy operands.
	a := materialized(n, 1, 2, 3)
	visited := 0
	a.ForEachAndNot(New(n), func(i int) bool { visited++; return visited < 2 })
	if visited != 2 {
		t.Fatalf("early stop visited %d, want 2", visited)
	}
	New(n).ForEachAnd(a, func(i int) bool { t.Fatal("lazy ∩ x must visit nothing"); return false })
}

func TestAppendIndicesReusesBuffer(t *testing.T) {
	s := FromIndices(100, []int{3, 50, 99})
	buf := make([]int, 0, 8)
	out := s.AppendIndices(buf)
	if len(out) != 3 || out[0] != 3 || out[1] != 50 || out[2] != 99 {
		t.Fatalf("AppendIndices = %v", out)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("AppendIndices must reuse the provided buffer's storage")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		buf = s.AppendIndices(buf[:0])
	}); allocs != 0 {
		t.Fatalf("AppendIndices into a sized buffer allocated %v times", allocs)
	}
}
