package bitset

import (
	"strings"
	"testing"
)

// TestBinaryRoundTripPreservesContainer pins the GCS3 property the codec
// exists for: encode/decode returns an equal set in the SAME container,
// including the lazy nil payloads.
func TestBinaryRoundTripPreservesContainer(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Set
		mode  uint8
	}{
		{"empty sparse", func() *Set { return New(100) }, modeSparse},
		{"sparse", func() *Set {
			s := New(1000)
			for _, v := range []int{1, 5, 9, 500, 999} {
				s.Add(v)
			}
			return s
		}, modeSparse},
		{"nil dense", func() *Set {
			s := New(100)
			s.mode = modeDense
			return s
		}, modeDense},
		{"dense", func() *Set {
			s := New(300)
			s.mode = modeDense
			for i := 0; i < 300; i += 2 {
				s.Add(i)
			}
			return s
		}, modeDense},
		{"run", func() *Set { return NewFull(1 << 20) }, modeRun},
		{"multi run", func() *Set {
			s := New(10000)
			for i := 0; i < 10000; i++ {
				if i%100 < 90 {
					s.Add(i)
				}
			}
			s.Compact()
			return s
		}, modeRun},
		{"capacity zero", func() *Set { return New(0) }, modeSparse},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.build()
			if orig.mode != tc.mode {
				t.Fatalf("builder produced mode %d, want %d", orig.mode, tc.mode)
			}
			buf := orig.AppendBinary(nil)
			if len(buf) != orig.BinarySize() {
				t.Fatalf("BinarySize %d != encoded length %d", orig.BinarySize(), len(buf))
			}
			got, n, err := FromBinary(buf)
			if err != nil {
				t.Fatalf("FromBinary: %v", err)
			}
			if n != len(buf) {
				t.Fatalf("consumed %d of %d bytes", n, len(buf))
			}
			if got.mode != orig.mode {
				t.Fatalf("container changed: mode %d, want %d", got.mode, orig.mode)
			}
			if !got.Equal(orig) {
				t.Fatalf("round trip changed contents")
			}
			if got.Len() != orig.Len() {
				t.Fatalf("capacity changed: %d, want %d", got.Len(), orig.Len())
			}
		})
	}
}

// TestBinaryDecodeFromStream checks FromBinary consumes exactly one set
// from a concatenation, the way the snapshot body section stores them.
func TestBinaryDecodeFromStream(t *testing.T) {
	a := New(64)
	a.Add(3)
	b := NewFull(128)
	buf := a.AppendBinary(nil)
	buf = b.AppendBinary(buf)
	buf = append(buf, 0xAA, 0xBB) // trailing junk must be left unconsumed

	gotA, n, err := FromBinary(buf)
	if err != nil {
		t.Fatalf("first decode: %v", err)
	}
	gotB, m, err := FromBinary(buf[n:])
	if err != nil {
		t.Fatalf("second decode: %v", err)
	}
	if !gotA.Equal(a) || !gotB.Equal(b) {
		t.Fatalf("stream decode changed contents")
	}
	if n+m != len(buf)-2 {
		t.Fatalf("consumed %d bytes, want %d", n+m, len(buf)-2)
	}
}

// TestBinaryRejectsInvalid sweeps malformed encodings: every one must be
// rejected with a descriptive error, never decoded into a set with broken
// invariants.
func TestBinaryRejectsInvalid(t *testing.T) {
	le32 := func(v uint32) []byte { return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)} }
	le64 := func(v uint64) []byte {
		out := make([]byte, 8)
		for i := range out {
			out[i] = byte(v >> (8 * i))
		}
		return out
	}
	enc := func(mode byte, capBits, count uint64, payload ...byte) []byte {
		buf := []byte{mode}
		buf = append(buf, le64(capBits)...)
		buf = append(buf, le64(count)...)
		return append(buf, payload...)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty input", nil, "truncated"},
		{"short header", []byte{0, 1, 2}, "truncated"},
		{"unknown mode", enc(9, 64, 0), "unknown container mode"},
		{"sparse payload truncated", enc(0, 64, 2, le32(1)...), "truncated"},
		{"sparse duplicate", enc(0, 64, 2, append(le32(5), le32(5)...)...), "strictly increasing"},
		{"sparse unsorted", enc(0, 64, 2, append(le32(6), le32(5)...)...), "strictly increasing"},
		{"sparse out of range", enc(0, 64, 1, le32(64)...), "out of range"},
		{"sparse huge count", enc(0, 64, 1<<60), "truncated"},
		{"dense word count mismatch", enc(1, 128, 1, le64(1)...), "needs 2"},
		{"dense tail bits set", enc(1, 60, 1, le64(1<<63)...), "tail bits"},
		{"run empty", enc(2, 64, 0), "at least one span"},
		{"run reversed span", enc(2, 64, 1, append(le32(5), le32(5)...)...), "empty run span"},
		{"run overlapping", enc(2, 64, 2, append(append(le32(0), le32(10)...), append(le32(9), le32(20)...)...)...), "overlap or touch"},
		{"run adjacent", enc(2, 64, 2, append(append(le32(0), le32(10)...), append(le32(10), le32(20)...)...)...), "overlap or touch"},
		{"run past capacity", enc(2, 64, 1, append(le32(0), le32(65)...)...), "exceeds capacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := FromBinary(tc.data)
			if err == nil {
				t.Fatalf("decode accepted malformed input")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
