package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if !s.Empty() || s.Count() != 0 {
		t.Fatalf("new set not empty: count=%d", s.Count())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		s.Add(i)
		if !s.Contains(i) {
			t.Errorf("Contains(%d) = false after Add", i)
		}
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if got := s.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	// Removing an absent bit is a no-op.
	s.Remove(64)
	if got := s.Count(); got != 5 {
		t.Fatalf("Count after double remove = %d, want 5", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", i)
				}
			}()
			s.Add(i)
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Error("And with mismatched capacity did not panic")
		}
	}()
	a.And(b)
}

func TestSetAllAndTrim(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		s := NewFull(n)
		if got := s.Count(); got != n {
			t.Errorf("NewFull(%d).Count() = %d", n, got)
		}
	}
}

func TestBooleanAlgebra(t *testing.T) {
	a := FromIndices(200, []int{1, 5, 64, 100, 150})
	b := FromIndices(200, []int{5, 64, 99, 150, 199})

	and := a.Clone()
	and.And(b)
	if got, want := and.String(), "{5, 64, 150}"; got != want {
		t.Errorf("And = %s, want %s", got, want)
	}
	or := a.Clone()
	or.Or(b)
	if got := or.Count(); got != 7 {
		t.Errorf("Or count = %d, want 7", got)
	}
	diff := a.Clone()
	diff.AndNot(b)
	if got, want := diff.String(), "{1, 100}"; got != want {
		t.Errorf("AndNot = %s, want %s", got, want)
	}

	if got := a.IntersectionCount(b); got != 3 {
		t.Errorf("IntersectionCount = %d, want 3", got)
	}
	if got := a.DifferenceCount(b); got != 2 {
		t.Errorf("DifferenceCount = %d, want 2", got)
	}
}

func TestSubsetEqual(t *testing.T) {
	a := FromIndices(64, []int{1, 2, 3})
	b := FromIndices(64, []int{1, 2, 3, 10})
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.SubsetOf(a.Clone()) {
		t.Error("a should be subset of itself")
	}
	if a.Equal(b) {
		t.Error("a should not equal b")
	}
	if !a.Equal(a.Clone()) {
		t.Error("a should equal its clone")
	}
	if a.Equal(New(65)) {
		t.Error("different capacities should not be Equal")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := FromIndices(300, []int{7, 70, 200, 299})
	var seen []int
	s.ForEach(func(i int) bool {
		seen = append(seen, i)
		return true
	})
	want := []int{7, 70, 200, 299}
	if len(seen) != len(want) {
		t.Fatalf("seen %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("seen %v, want %v", seen, want)
		}
	}
	// early stop
	n := 0
	s.ForEach(func(int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

func TestIndicesRoundTrip(t *testing.T) {
	idx := []int{0, 63, 64, 127, 128}
	s := FromIndices(129, idx)
	got := s.Indices()
	if len(got) != len(idx) {
		t.Fatalf("Indices = %v, want %v", got, idx)
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("Indices = %v, want %v", got, idx)
		}
	}
}

func TestClearAndClone(t *testing.T) {
	s := FromIndices(70, []int{3, 69})
	c := s.Clone()
	s.Clear()
	if !s.Empty() {
		t.Error("Clear left bits set")
	}
	if c.Count() != 2 {
		t.Error("Clone shares storage with original")
	}
}

func TestStringEmpty(t *testing.T) {
	if got := New(5).String(); got != "{}" {
		t.Errorf("String = %q, want {}", got)
	}
}

func TestBytesPositive(t *testing.T) {
	if New(1000).Bytes() <= 0 {
		t.Error("Bytes should be positive")
	}
}

// Property: And/Or/AndNot agree with a map-based reference implementation.
func TestQuickAgainstReference(t *testing.T) {
	const n = 257
	f := func(aIdx, bIdx []uint16) bool {
		ref := func(idx []uint16) map[int]bool {
			m := map[int]bool{}
			for _, v := range idx {
				m[int(v)%n] = true
			}
			return m
		}
		ma, mb := ref(aIdx), ref(bIdx)
		a, b := New(n), New(n)
		for i := range ma {
			a.Add(i)
		}
		for i := range mb {
			b.Add(i)
		}

		and := a.Clone()
		and.And(b)
		or := a.Clone()
		or.Or(b)
		diff := a.Clone()
		diff.AndNot(b)

		for i := 0; i < n; i++ {
			if and.Contains(i) != (ma[i] && mb[i]) {
				return false
			}
			if or.Contains(i) != (ma[i] || mb[i]) {
				return false
			}
			if diff.Contains(i) != (ma[i] && !mb[i]) {
				return false
			}
		}
		return and.Count() == a.IntersectionCount(b) &&
			diff.Count() == a.DifferenceCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SubsetOf is consistent with AndNot emptiness.
func TestQuickSubset(t *testing.T) {
	const n = 100
	f := func(aIdx, bIdx []uint8) bool {
		a, b := New(n), New(n)
		for _, v := range aIdx {
			a.Add(int(v) % n)
		}
		for _, v := range bIdx {
			b.Add(int(v) % n)
		}
		d := a.Clone()
		d.AndNot(b)
		return a.SubsetOf(b) == d.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBitsetAnd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x, y := New(100000), New(100000)
	for i := 0; i < 5000; i++ {
		x.Add(rng.Intn(100000))
		y.Add(rng.Intn(100000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := x.Clone()
		z.And(y)
	}
}
