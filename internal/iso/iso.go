// Package iso implements subgraph-isomorphism testing for undirected
// vertex-labelled graphs — the Verifier of GraphCache's Method M and the
// engine behind sub/super cache-hit detection.
//
// Two engines are provided:
//
//   - VF2 (Cordella et al., TPAMI 2004): the default verifier, implementing
//     non-induced subgraph isomorphism with connectivity-aware ordering and
//     one-step lookahead pruning.
//   - Ullmann (1976): the classic candidate-matrix algorithm with bitset
//     refinement, kept as an independent baseline and cross-check.
//
// Semantics: SubIso(p, t) == true iff there is an injective mapping
// f: V(p) → V(t) with label(v) == label(f(v)) for every vertex and
// {f(u), f(v)} ∈ E(t) for every {u, v} ∈ E(p). Edges of t outside the image
// are allowed (non-induced matching), matching the paper's setting.
package iso

import (
	"graphcache/internal/graph"
)

// Stats reports the work performed by a single matcher invocation.
type Stats struct {
	// Recursions is the number of search-tree nodes expanded.
	Recursions int64
	// Candidates is the number of (pattern, target) pair feasibility checks.
	Candidates int64
	// Aborted is true when the search hit Options.MaxRecursions before
	// finding an answer; the boolean result is then false and unreliable.
	Aborted bool
}

// Options bounds a matcher invocation.
type Options struct {
	// MaxRecursions caps search-tree nodes; 0 means unlimited. When the cap
	// is hit the match returns false with Stats.Aborted set.
	MaxRecursions int64
}

// SubIso reports whether pattern p is (non-induced) subgraph-isomorphic to
// target t using VF2.
func SubIso(p, t *graph.Graph) bool {
	ok, _ := VF2(p, t, Options{})
	return ok
}

// Isomorphic reports whether a and b are isomorphic labelled graphs.
// A non-induced embedding between graphs of equal vertex and edge count is
// necessarily a full isomorphism, so one VF2 run suffices after the size
// pre-checks.
func Isomorphic(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	if !graph.LabelVectorOf(a).DominatedBy(graph.LabelVectorOf(b)) {
		return false
	}
	return SubIso(a, b)
}

// quickReject applies cheap necessary conditions for p ⊑ t: matching
// directedness, size, label multiset dominance, and per-label
// sorted-degree dominance (each pattern vertex must map to a
// same-labelled target vertex of at least its degree, injectively, which
// sorted sequences must permit). Both degree summaries come from the
// graphs' memo caches (graph.LabelDegrees), so repeated probes against
// the same graphs — the common case when verifying a candidate list —
// allocate nothing here.
func quickReject(p, t *graph.Graph) bool {
	if p.Directed() != t.Directed() {
		return true // mixed-directedness matching is undefined; no match
	}
	if p.N() > t.N() || p.M() > t.M() {
		return true
	}
	pd := p.LabelDegrees()
	td := t.LabelDegrees()
	for l, pds := range pd {
		tds, ok := td[l]
		if !ok || len(tds) < len(pds) {
			return true
		}
		// Both sorted descending: k-th largest pattern degree must fit
		// under k-th largest target degree.
		for i, d := range pds {
			if tds[i] < d {
				return true
			}
		}
	}
	return false
}
