package iso

import (
	"math/rand"
	"testing"

	"graphcache/internal/graph"
)

// bruteSubIsoGeneral is the reference matcher extended to directed graphs
// and edge labels: try every injective mapping, checking arcs in both
// directions with label equality.
func bruteSubIsoGeneral(p, t *graph.Graph) bool {
	if p.N() > t.N() || p.Directed() != t.Directed() {
		return false
	}
	mapping := make([]int, p.N())
	used := make([]bool, t.N())
	edgeOK := func(pu, pv, tu, tv int) bool {
		if !p.HasEdge(pu, pv) {
			return true
		}
		return t.HasEdge(tu, tv) && p.EdgeLabel(pu, pv) == t.EdgeLabel(tu, tv)
	}
	var rec func(pu int) bool
	rec = func(pu int) bool {
		if pu == p.N() {
			return true
		}
		for tv := 0; tv < t.N(); tv++ {
			if used[tv] || p.Label(pu) != t.Label(tv) {
				continue
			}
			ok := true
			for pv := 0; pv < pu; pv++ {
				if !edgeOK(pu, pv, tv, mapping[pv]) || !edgeOK(pv, pu, mapping[pv], tv) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[pu] = tv
			used[tv] = true
			if rec(pu + 1) {
				return true
			}
			used[tv] = false
		}
		return false
	}
	return rec(0)
}

func randomDigraph(rng *rand.Rand, n, vlabels, elabels int, pArc float64) *graph.Graph {
	b := graph.NewBuilder(n).Directed()
	for v := 0; v < n; v++ {
		b.SetLabel(v, graph.Label(rng.Intn(vlabels)))
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && rng.Float64() < pArc {
				if elabels > 0 {
					b.AddLabeledEdge(u, v, graph.Label(rng.Intn(elabels)))
				} else {
					b.AddEdge(u, v)
				}
			}
		}
	}
	return b.MustBuild()
}

func randomEdgeLabelled(rng *rand.Rand, n, vlabels, elabels int, pEdge float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLabel(v, graph.Label(rng.Intn(vlabels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < pEdge {
				b.AddLabeledEdge(u, v, graph.Label(rng.Intn(elabels)))
			}
		}
	}
	return b.MustBuild()
}

func TestDirectedSubIsoBasics(t *testing.T) {
	// Arc a→b embeds into a→b→c but not into its reversal.
	p := graph.NewBuilder(2).Directed().SetLabels([]graph.Label{1, 2}).AddEdge(0, 1).MustBuild()
	fwd := graph.NewBuilder(3).Directed().SetLabels([]graph.Label{1, 2, 3}).
		AddEdge(0, 1).AddEdge(1, 2).MustBuild()
	rev := graph.NewBuilder(3).Directed().SetLabels([]graph.Label{1, 2, 3}).
		AddEdge(1, 0).AddEdge(2, 1).MustBuild()
	if !SubIso(p, fwd) {
		t.Error("forward arc should embed")
	}
	if SubIso(p, rev) {
		t.Error("reversed target should not admit the forward arc")
	}
	if ok, _ := Ullmann(p, fwd, Options{}); !ok {
		t.Error("Ullmann: forward arc should embed")
	}
	if ok, _ := Ullmann(p, rev, Options{}); ok {
		t.Error("Ullmann: reversed target should not match")
	}
}

func TestDirectedCycleVsPath(t *testing.T) {
	mk := func(edges [][2]int, n int) *graph.Graph {
		b := graph.NewBuilder(n).Directed()
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		return b.MustBuild()
	}
	cycle := mk([][2]int{{0, 1}, {1, 2}, {2, 0}}, 3)
	path := mk([][2]int{{0, 1}, {1, 2}}, 3)
	if SubIso(cycle, path) {
		t.Error("directed cycle should not embed in directed path")
	}
	if !SubIso(path, cycle) {
		t.Error("directed path should embed in directed cycle")
	}
}

func TestEdgeLabelMatching(t *testing.T) {
	p := graph.NewBuilder(2).SetLabels([]graph.Label{1, 1}).AddLabeledEdge(0, 1, 5).MustBuild()
	tGood := graph.NewBuilder(3).SetLabels([]graph.Label{1, 1, 1}).
		AddLabeledEdge(0, 1, 9).AddLabeledEdge(1, 2, 5).MustBuild()
	tBad := graph.NewBuilder(3).SetLabels([]graph.Label{1, 1, 1}).
		AddLabeledEdge(0, 1, 9).AddLabeledEdge(1, 2, 8).MustBuild()
	if !SubIso(p, tGood) {
		t.Error("matching edge label should embed")
	}
	if SubIso(p, tBad) {
		t.Error("mismatched edge labels should not embed")
	}
	if ok, _ := Ullmann(p, tGood, Options{}); !ok {
		t.Error("Ullmann: matching edge label should embed")
	}
	if ok, _ := Ullmann(p, tBad, Options{}); ok {
		t.Error("Ullmann: mismatched edge labels should not embed")
	}
}

func TestMixedDirectednessRejected(t *testing.T) {
	und := graph.MustNew([]graph.Label{1, 1}, [][2]int{{0, 1}})
	dir := graph.NewBuilder(2).Directed().SetLabels([]graph.Label{1, 1}).AddEdge(0, 1).MustBuild()
	if SubIso(und, dir) || SubIso(dir, und) {
		t.Error("mixed directedness must not match")
	}
	if Isomorphic(und, dir) {
		t.Error("mixed directedness must not be isomorphic")
	}
}

func TestDirectedVF2AgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		p := randomDigraph(rng, 2+rng.Intn(3), 2, 2, 0.4)
		tg := randomDigraph(rng, 3+rng.Intn(4), 2, 2, 0.4)
		want := bruteSubIsoGeneral(p, tg)
		if got := SubIso(p, tg); got != want {
			t.Fatalf("trial %d: VF2 = %v, brute = %v\np edges=%v\nt edges=%v",
				trial, got, want, p.Edges(), tg.Edges())
		}
		if got, _ := Ullmann(p, tg, Options{}); got != want {
			t.Fatalf("trial %d: Ullmann = %v, brute = %v", trial, got, want)
		}
	}
}

func TestEdgeLabelledVF2AgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 300; trial++ {
		p := randomEdgeLabelled(rng, 2+rng.Intn(3), 2, 2, 0.5)
		tg := randomEdgeLabelled(rng, 3+rng.Intn(4), 2, 2, 0.5)
		want := bruteSubIsoGeneral(p, tg)
		if got := SubIso(p, tg); got != want {
			t.Fatalf("trial %d: VF2 = %v, brute = %v", trial, got, want)
		}
		if got, _ := Ullmann(p, tg, Options{}); got != want {
			t.Fatalf("trial %d: Ullmann = %v, brute = %v", trial, got, want)
		}
	}
}

func TestDirectedEdgeLabelledIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g := randomDigraph(rng, 7, 2, 3, 0.3)
	// Permute.
	perm := rng.Perm(7)
	b := graph.NewBuilder(7).Directed()
	for old, nw := range perm {
		b.SetLabel(nw, g.Label(old))
	}
	for _, e := range g.Edges() {
		b.AddLabeledEdge(perm[e[0]], perm[e[1]], g.EdgeLabel(e[0], e[1]))
	}
	pg := b.MustBuild()
	if !Isomorphic(g, pg) {
		t.Error("permuted directed labelled graph should be isomorphic")
	}
}

func TestDirectedFindEmbeddingValid(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 30; trial++ {
		tg := randomDigraph(rng, 8, 2, 2, 0.3)
		verts := rng.Perm(8)[:4]
		p, err := tg.InducedSubgraph(verts)
		if err != nil {
			t.Fatal(err)
		}
		m := FindEmbedding(p, tg)
		if m == nil {
			t.Fatal("induced subgraph must embed")
		}
		for _, e := range p.Edges() {
			if !tg.HasEdge(m[e[0]], m[e[1]]) {
				t.Fatal("arc not preserved")
			}
			if p.EdgeLabel(e[0], e[1]) != tg.EdgeLabel(m[e[0]], m[e[1]]) {
				t.Fatal("edge label not preserved")
			}
		}
	}
}
