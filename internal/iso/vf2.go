package iso

import (
	"sync"

	"graphcache/internal/graph"
)

// statePool recycles vf2State values (and their core slices) across
// invocations. Cache hit detection and candidate verification run VF2
// once per candidate graph, so without pooling every probe pays three
// O(n) allocations; with it a steady-state matcher invocation allocates
// nothing. The visit order is not pooled — it comes from the pattern's
// memo cache (graph.VisitOrder) and is shared read-only.
var statePool = sync.Pool{New: func() any { return new(vf2State) }}

// acquireState returns a ready-to-run matcher state for p ⊑ t with all
// flags cleared and both core arrays reset to -1.
func acquireState(p, t *graph.Graph) *vf2State {
	m := statePool.Get().(*vf2State)
	m.p, m.t = p, t
	m.order = p.VisitOrder()
	m.pCore = resetCore(m.pCore, p.N())
	m.tCore = resetCore(m.tCore, t.N())
	m.opts = Options{}
	m.aborted = false
	m.capture = false
	m.count = false
	m.limit = 0
	m.found = 0
	return m
}

// releaseState drops the graph references (so pooled states never pin
// graphs) and returns the state to the pool.
func releaseState(m *vf2State) {
	m.p, m.t = nil, nil
	m.order = nil
	statePool.Put(m)
}

// resetCore returns s resized to n with every slot set to -1, reusing the
// backing array when capacity allows.
func resetCore(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = -1
	}
	return s
}

// VF2 runs the VF2 subgraph-isomorphism search and reports whether p ⊑ t,
// together with search statistics. opts bounds the search; on an aborted
// search the boolean is false and Stats.Aborted is set.
func VF2(p, t *graph.Graph, opts Options) (bool, Stats) {
	var st Stats
	if p.N() == 0 {
		return true, st // the empty pattern embeds everywhere
	}
	if quickReject(p, t) {
		return false, st
	}
	m := acquireState(p, t)
	m.opts = opts
	ok := m.match(0, &st)
	st.Aborted = m.aborted
	ok = ok && !m.aborted
	releaseState(m)
	return ok, st
}

// FindEmbedding returns one embedding of p into t as a mapping from pattern
// vertex to target vertex, or nil if none exists.
func FindEmbedding(p, t *graph.Graph) []int {
	if p.N() == 0 {
		return []int{}
	}
	if quickReject(p, t) {
		return nil
	}
	m := acquireState(p, t)
	m.capture = true
	var st Stats
	if !m.match(0, &st) {
		releaseState(m)
		return nil
	}
	out := make([]int, p.N())
	for i, v := range m.pCore {
		out[i] = int(v)
	}
	releaseState(m)
	return out
}

// CountEmbeddings counts embeddings of p into t, stopping at limit
// (limit <= 0 counts all). Symmetric pattern automorphisms are counted
// separately, as is standard.
func CountEmbeddings(p, t *graph.Graph, limit int) int {
	if p.N() == 0 {
		return 1
	}
	if quickReject(p, t) {
		return 0
	}
	m := acquireState(p, t)
	m.count = true
	m.limit = limit
	var st Stats
	m.match(0, &st)
	found := m.found
	releaseState(m)
	return found
}

type vf2State struct {
	p, t    *graph.Graph
	order   []int
	pCore   []int32 // pattern vertex -> target vertex or -1
	tCore   []int32 // target vertex -> pattern vertex or -1
	opts    Options
	aborted bool

	capture bool // stop at first match, keep mapping
	count   bool // enumerate matches
	limit   int
	found   int
}

// match extends the partial mapping at the given depth in the visit order.
// It returns true when the search can stop (a match was found in decision
// mode, or the enumeration limit was reached in counting mode).
func (m *vf2State) match(depth int, st *Stats) bool {
	if depth == len(m.order) {
		if m.count {
			m.found++
			return m.limit > 0 && m.found >= m.limit
		}
		return true
	}
	st.Recursions++
	if m.opts.MaxRecursions > 0 && st.Recursions > m.opts.MaxRecursions {
		m.aborted = true
		return false
	}

	pu := m.order[depth]

	// Candidate targets: if pu has an already-matched neighbor, only the
	// correspondingly-adjacent vertices of that neighbor's image qualify;
	// otherwise all unmatched target vertices (first vertex of a
	// component). For directed patterns the anchor direction matters:
	// anchoring on an out-neighbor pn (pu→pn) restricts candidates to
	// in-neighbors of pn's image, and vice versa.
	var (
		anchorImage int32 = -1
		anchorOut         = false // true: pu→anchor, so tv must be in-neighbor of image
	)
	for _, pn := range m.p.OutNeighbors(pu) {
		if m.pCore[pn] >= 0 {
			anchorImage, anchorOut = m.pCore[pn], true
			break
		}
	}
	if anchorImage < 0 && m.p.Directed() {
		for _, pn := range m.p.InNeighbors(pu) {
			if m.pCore[pn] >= 0 {
				anchorImage = m.pCore[pn]
				break
			}
		}
	}

	try := func(tv int32) bool {
		st.Candidates++
		if m.tCore[tv] >= 0 {
			return false
		}
		if !m.feasible(pu, tv) {
			return false
		}
		m.pCore[pu] = tv
		m.tCore[tv] = int32(pu)
		done := m.match(depth+1, st)
		if done && m.capture {
			return true // keep the completed mapping intact
		}
		m.pCore[pu] = -1
		m.tCore[tv] = -1
		return done
	}

	if anchorImage >= 0 {
		cands := m.t.InNeighbors(int(anchorImage))
		if !anchorOut {
			cands = m.t.OutNeighbors(int(anchorImage))
		}
		for _, tv := range cands {
			if try(tv) {
				return true
			}
			if m.aborted {
				return false
			}
		}
		return false
	}
	for tv := int32(0); tv < int32(m.t.N()); tv++ {
		if try(tv) {
			return true
		}
		if m.aborted {
			return false
		}
	}
	return false
}

// feasible applies the VF2 feasibility rules for non-induced matching:
// label equality, degree sufficiency, consistency (direction- and
// edge-label-aware) with all matched pattern neighbors, and a one-step
// lookahead comparing unmatched-neighbor counts per direction.
func (m *vf2State) feasible(pu int, tv int32) bool {
	if m.p.Label(pu) != m.t.Label(int(tv)) {
		return false
	}
	if m.t.OutDegree(int(tv)) < m.p.OutDegree(pu) || m.t.InDegree(int(tv)) < m.p.InDegree(pu) {
		return false
	}
	// Every matched out-neighbor pn of pu (edge pu→pn) must map to an
	// out-neighbor of tv with a matching edge label; dually for
	// in-neighbors. For undirected graphs Out==In, so only the first loop
	// constrains (the second repeats it harmlessly only when directed).
	pendingOut := 0
	for _, pn := range m.p.OutNeighbors(pu) {
		if img := m.pCore[pn]; img >= 0 {
			if !m.t.HasEdge(int(tv), int(img)) {
				return false
			}
			if m.p.EdgeLabel(pu, int(pn)) != m.t.EdgeLabel(int(tv), int(img)) {
				return false
			}
		} else {
			pendingOut++
		}
	}
	pendingIn := 0
	if m.p.Directed() {
		for _, pn := range m.p.InNeighbors(pu) {
			if img := m.pCore[pn]; img >= 0 {
				if !m.t.HasEdge(int(img), int(tv)) {
					return false
				}
				if m.p.EdgeLabel(int(pn), pu) != m.t.EdgeLabel(int(img), int(tv)) {
					return false
				}
			} else {
				pendingIn++
			}
		}
	}
	// Lookahead: tv needs at least as many unmatched out-/in-neighbors as
	// pu has pending in each direction.
	availOut := 0
	for _, tn := range m.t.OutNeighbors(int(tv)) {
		if m.tCore[tn] < 0 {
			availOut++
		}
	}
	if availOut < pendingOut {
		return false
	}
	if m.p.Directed() {
		availIn := 0
		for _, tn := range m.t.InNeighbors(int(tv)) {
			if m.tCore[tn] < 0 {
				availIn++
			}
		}
		if availIn < pendingIn {
			return false
		}
	}
	return true
}
