package iso

import (
	"math/bits"

	"graphcache/internal/graph"
)

// Ullmann reports whether p ⊑ t (non-induced) using Ullmann's algorithm
// with bitset candidate rows and arc-consistency refinement. It is kept as
// an independent verifier for cross-checking VF2 and as the "alternative
// component" a developer might plug into Method M.
func Ullmann(p, t *graph.Graph, opts Options) (bool, Stats) {
	var st Stats
	if p.N() == 0 {
		return true, st
	}
	if quickReject(p, t) {
		return false, st
	}

	np, nt := p.N(), t.N()
	words := (nt + 63) / 64
	// cand[pu] is a bitset over target vertices compatible with pu.
	cand := make([][]uint64, np)
	backing := make([]uint64, np*words)
	for pu := 0; pu < np; pu++ {
		cand[pu] = backing[pu*words : (pu+1)*words]
		for tv := 0; tv < nt; tv++ {
			if p.Label(pu) == t.Label(tv) &&
				t.OutDegree(tv) >= p.OutDegree(pu) && t.InDegree(tv) >= p.InDegree(pu) {
				cand[pu][tv/64] |= 1 << (uint(tv) % 64)
			}
		}
	}

	u := &ullmannState{
		p:          p,
		t:          t,
		words:      words,
		cand:       cand,
		assignment: make([]int32, np),
		opts:       opts,
	}
	if !u.refineAll() {
		return false, st
	}
	used := make([]uint64, words)
	ok := u.search(0, used, &st)
	st.Aborted = u.aborted
	return ok && !u.aborted, st
}

type ullmannState struct {
	p, t       *graph.Graph
	words      int
	cand       [][]uint64
	assignment []int32 // assignment[pv] = image of pattern vertex pv (valid for pv < current depth)
	opts       Options
	aborted    bool
}

// refineAll applies the Ullmann refinement to a fixpoint: a candidate tv
// for pu survives only if every neighbor of pu has at least one candidate
// among tv's neighbors. Returns false if some row empties (no embedding).
func (u *ullmannState) refineAll() bool {
	changed := true
	for changed {
		changed = false
		for pu := 0; pu < u.p.N(); pu++ {
			for wi := 0; wi < u.words; wi++ {
				w := u.cand[pu][wi]
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &= w - 1
					tv := wi*64 + b
					if !u.supported(pu, tv) {
						u.cand[pu][wi] &^= 1 << uint(b)
						changed = true
					}
				}
			}
			if rowEmpty(u.cand[pu]) {
				return false
			}
		}
	}
	return true
}

// supported reports whether mapping pu → tv survives one round of arc
// consistency: every pattern neighbor of pu (per direction, with matching
// edge label) needs a candidate among tv's corresponding neighbors.
func (u *ullmannState) supported(pu, tv int) bool {
	for _, pn := range u.p.OutNeighbors(pu) {
		el := u.p.EdgeLabel(pu, int(pn))
		found := false
		for _, tn := range u.t.OutNeighbors(tv) {
			if u.cand[pn][tn/64]&(1<<(uint(tn)%64)) != 0 && u.t.EdgeLabel(tv, int(tn)) == el {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if !u.p.Directed() {
		return true
	}
	for _, pn := range u.p.InNeighbors(pu) {
		el := u.p.EdgeLabel(int(pn), pu)
		found := false
		for _, tn := range u.t.InNeighbors(tv) {
			if u.cand[pn][tn/64]&(1<<(uint(tn)%64)) != 0 && u.t.EdgeLabel(int(tn), tv) == el {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func rowEmpty(r []uint64) bool {
	for _, w := range r {
		if w != 0 {
			return false
		}
	}
	return true
}

// search assigns pattern vertices in index order, masking used target
// vertices and checking adjacency against already-assigned neighbors.
func (u *ullmannState) search(pu int, used []uint64, st *Stats) bool {
	if pu == u.p.N() {
		return true
	}
	st.Recursions++
	if u.opts.MaxRecursions > 0 && st.Recursions > u.opts.MaxRecursions {
		u.aborted = true
		return false
	}
	for wi := 0; wi < u.words; wi++ {
		w := u.cand[pu][wi] &^ used[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			tv := wi*64 + b
			st.Candidates++
			if !u.consistent(pu, tv) {
				continue
			}
			used[wi] |= 1 << uint(b)
			u.assignment[pu] = int32(tv)
			if u.search(pu+1, used, st) {
				return true
			}
			if u.aborted {
				return false
			}
			used[wi] &^= 1 << uint(b)
		}
	}
	return false
}

// consistent checks that tv respects direction and edge labels against the
// images of all already-assigned neighbors of pu.
func (u *ullmannState) consistent(pu, tv int) bool {
	for _, pn := range u.p.OutNeighbors(pu) {
		if int(pn) >= pu {
			continue
		}
		img := int(u.assignment[pn])
		if !u.t.HasEdge(tv, img) || u.t.EdgeLabel(tv, img) != u.p.EdgeLabel(pu, int(pn)) {
			return false
		}
	}
	if !u.p.Directed() {
		return true
	}
	for _, pn := range u.p.InNeighbors(pu) {
		if int(pn) >= pu {
			continue
		}
		img := int(u.assignment[pn])
		if !u.t.HasEdge(img, tv) || u.t.EdgeLabel(img, tv) != u.p.EdgeLabel(int(pn), pu) {
			return false
		}
	}
	return true
}
