package iso

import (
	"math/rand"
	"testing"

	"graphcache/internal/graph"
)

// bruteSubIso is a reference implementation: try every injective mapping.
// Only usable for tiny patterns.
func bruteSubIso(p, t *graph.Graph) bool {
	if p.N() > t.N() {
		return false
	}
	mapping := make([]int, p.N())
	used := make([]bool, t.N())
	var rec func(pu int) bool
	rec = func(pu int) bool {
		if pu == p.N() {
			return true
		}
		for tv := 0; tv < t.N(); tv++ {
			if used[tv] || p.Label(pu) != t.Label(tv) {
				continue
			}
			ok := true
			for _, pn := range p.Neighbors(pu) {
				if int(pn) < pu && !t.HasEdge(tv, mapping[pn]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mapping[pu] = tv
			used[tv] = true
			if rec(pu + 1) {
				return true
			}
			used[tv] = false
		}
		return false
	}
	return rec(0)
}

func tri(a, b, c graph.Label) *graph.Graph {
	return graph.MustNew([]graph.Label{a, b, c}, [][2]int{{0, 1}, {1, 2}, {0, 2}})
}

func pathG(labels ...graph.Label) *graph.Graph {
	edges := make([][2]int, 0, len(labels)-1)
	for i := 0; i+1 < len(labels); i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	return graph.MustNew(labels, edges)
}

func randomGraph(rng *rand.Rand, n, labels int, pEdge float64) *graph.Graph {
	ls := make([]graph.Label, n)
	for i := range ls {
		ls[i] = graph.Label(rng.Intn(labels))
	}
	var es [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < pEdge {
				es = append(es, [2]int{u, v})
			}
		}
	}
	return graph.MustNew(ls, es)
}

func TestSubIsoBasics(t *testing.T) {
	cases := []struct {
		name string
		p, t *graph.Graph
		want bool
	}{
		{"path2 in triangle", pathG(0, 0), tri(0, 0, 0), true},
		{"path3 in triangle (non-induced)", pathG(0, 0, 0), tri(0, 0, 0), true},
		{"triangle in path3", tri(0, 0, 0), pathG(0, 0, 0), false},
		{"label mismatch", pathG(1, 2), pathG(1, 1), false},
		{"self embedding", tri(1, 2, 3), tri(1, 2, 3), true},
		{"pattern bigger", pathG(0, 0, 0, 0), tri(0, 0, 0), false},
		{"labelled path in labelled triangle", pathG(1, 2), tri(1, 2, 3), true},
		{"absent label", pathG(9), tri(1, 2, 3), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := SubIso(c.p, c.t); got != c.want {
				t.Errorf("SubIso = %v, want %v", got, c.want)
			}
			if got, _ := Ullmann(c.p, c.t, Options{}); got != c.want {
				t.Errorf("Ullmann = %v, want %v", got, c.want)
			}
			if got := bruteSubIso(c.p, c.t); got != c.want {
				t.Errorf("brute = %v, want %v (test oracle broken)", got, c.want)
			}
		})
	}
}

func TestEmptyPattern(t *testing.T) {
	empty := graph.MustNew(nil, nil)
	if !SubIso(empty, tri(0, 0, 0)) {
		t.Error("empty pattern should embed")
	}
	if ok, _ := Ullmann(empty, tri(0, 0, 0), Options{}); !ok {
		t.Error("Ullmann: empty pattern should embed")
	}
	if CountEmbeddings(empty, tri(0, 0, 0), 0) != 1 {
		t.Error("empty pattern should count one embedding")
	}
}

func TestDisconnectedPattern(t *testing.T) {
	// Two isolated labelled vertices; target has both labels.
	p := graph.MustNew([]graph.Label{1, 2}, nil)
	if !SubIso(p, pathG(2, 1)) {
		t.Error("disconnected pattern should embed")
	}
	if SubIso(p, pathG(1, 1)) {
		t.Error("missing label 2 should fail")
	}
	// Two disjoint edges into a 4-cycle.
	p2 := graph.MustNew([]graph.Label{0, 0, 0, 0}, [][2]int{{0, 1}, {2, 3}})
	c4 := graph.MustNew([]graph.Label{0, 0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if !SubIso(p2, c4) {
		t.Error("two disjoint edges should embed in C4")
	}
}

func TestFindEmbeddingValid(t *testing.T) {
	p := pathG(1, 2, 1)
	tg := graph.MustNew([]graph.Label{1, 2, 1, 2}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	m := FindEmbedding(p, tg)
	if m == nil {
		t.Fatal("no embedding found")
	}
	seen := map[int]bool{}
	for pu, tv := range m {
		if seen[tv] {
			t.Fatal("mapping not injective")
		}
		seen[tv] = true
		if p.Label(pu) != tg.Label(tv) {
			t.Fatal("labels not preserved")
		}
	}
	for _, e := range p.Edges() {
		if !tg.HasEdge(m[e[0]], m[e[1]]) {
			t.Fatal("edges not preserved")
		}
	}
}

func TestFindEmbeddingNone(t *testing.T) {
	if m := FindEmbedding(tri(0, 0, 0), pathG(0, 0, 0)); m != nil {
		t.Fatalf("unexpected embedding %v", m)
	}
}

func TestCountEmbeddings(t *testing.T) {
	// Single edge into a triangle, all labels equal: 3 edges × 2 orders.
	if got := CountEmbeddings(pathG(0, 0), tri(0, 0, 0), 0); got != 6 {
		t.Errorf("edge into triangle: %d embeddings, want 6", got)
	}
	// Path3 into triangle: all 6 vertex orderings work.
	if got := CountEmbeddings(pathG(0, 0, 0), tri(0, 0, 0), 0); got != 6 {
		t.Errorf("path3 into triangle: %d, want 6", got)
	}
	// Limit honored.
	if got := CountEmbeddings(pathG(0, 0), tri(0, 0, 0), 2); got != 2 {
		t.Errorf("limited count = %d, want 2", got)
	}
}

func TestIsomorphic(t *testing.T) {
	g := graph.MustNew([]graph.Label{1, 2, 1, 2}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	perm := []int{3, 1, 0, 2}
	ls := make([]graph.Label, 4)
	for old, nw := range perm {
		ls[nw] = g.Label(old)
	}
	var es [][2]int
	for _, e := range g.Edges() {
		es = append(es, [2]int{perm[e[0]], perm[e[1]]})
	}
	h := graph.MustNew(ls, es)
	if !Isomorphic(g, h) {
		t.Error("permuted graph should be isomorphic")
	}
	if Isomorphic(g, pathG(1, 2, 1, 2)) {
		t.Error("C4 vs P4 should not be isomorphic")
	}
	if Isomorphic(g, tri(1, 2, 1)) {
		t.Error("different sizes should not be isomorphic")
	}
}

func TestVF2AgreesWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		p := randomGraph(rng, 2+rng.Intn(4), 2, 0.5)
		tg := randomGraph(rng, 3+rng.Intn(5), 2, 0.5)
		want := bruteSubIso(p, tg)
		if got := SubIso(p, tg); got != want {
			t.Fatalf("trial %d: VF2 = %v, brute = %v\np=%v edges=%v labels=%v\nt=%v edges=%v labels=%v",
				trial, got, want, p, p.Edges(), p.Labels(), tg, tg.Edges(), tg.Labels())
		}
		if got, _ := Ullmann(p, tg, Options{}); got != want {
			t.Fatalf("trial %d: Ullmann = %v, brute = %v", trial, got, want)
		}
	}
}

func TestVF2AgreesWithUllmannLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		p := randomGraph(rng, 4+rng.Intn(4), 3, 0.4)
		tg := randomGraph(rng, 8+rng.Intn(8), 3, 0.3)
		v, _ := VF2(p, tg, Options{})
		u, _ := Ullmann(p, tg, Options{})
		if v != u {
			t.Fatalf("trial %d: VF2 = %v, Ullmann = %v", trial, v, u)
		}
	}
}

func TestSubIsoTransitivityWitness(t *testing.T) {
	// The cache's correctness rests on transitivity: q ⊑ h and h ⊑ G must
	// imply q ⊑ G. Exercise it on random chains.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		g := randomGraph(rng, 10, 2, 0.4)
		// h = induced subgraph of g; q = induced subgraph of h.
		hv := rng.Perm(10)[:6]
		h, err := g.InducedSubgraph(hv)
		if err != nil {
			t.Fatal(err)
		}
		qv := rng.Perm(6)[:3]
		q, err := h.InducedSubgraph(qv)
		if err != nil {
			t.Fatal(err)
		}
		if !SubIso(h, g) || !SubIso(q, h) {
			t.Fatal("induced subgraph must embed in parent")
		}
		if !SubIso(q, g) {
			t.Fatal("transitivity violated")
		}
	}
}

func TestBudgetAbort(t *testing.T) {
	// A hard instance: pattern is a 12-cycle, target a 12-clique minus the
	// cycle won't abort quickly, so force a tiny budget instead.
	n := 14
	ls := make([]graph.Label, n)
	var es [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			es = append(es, [2]int{u, v})
		}
	}
	clique := graph.MustNew(ls, es)
	cyc := make([][2]int, n)
	for i := 0; i < n; i++ {
		cyc[i] = [2]int{i, (i + 1) % n}
	}
	cycle := graph.MustNew(ls, cyc)

	ok, st := VF2(cycle, clique, Options{MaxRecursions: 3})
	if !st.Aborted {
		t.Fatalf("expected abort, got ok=%v stats=%+v", ok, st)
	}
	if ok {
		t.Error("aborted search must return false")
	}
	ok2, st2 := Ullmann(cycle, clique, Options{MaxRecursions: 3})
	if !st2.Aborted || ok2 {
		t.Errorf("Ullmann abort: ok=%v stats=%+v", ok2, st2)
	}
}

func TestStatsPopulated(t *testing.T) {
	_, st := VF2(pathG(0, 0, 0), tri(0, 0, 0), Options{})
	if st.Recursions == 0 || st.Candidates == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestQuickRejectByDegree(t *testing.T) {
	// Star K1,3 cannot embed into a path even though labels and sizes fit.
	star := graph.MustNew([]graph.Label{0, 0, 0, 0}, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	p4 := pathG(0, 0, 0, 0)
	if SubIso(star, p4) {
		t.Error("star should not embed in path")
	}
	if !quickReject(star, p4) {
		t.Error("quickReject should catch the degree mismatch")
	}
}

func BenchmarkVF2MoleculeSized(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tg := randomGraph(rng, 40, 8, 0.06)
	p := randomGraph(rng, 8, 8, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		VF2(p, tg, Options{})
	}
}

func BenchmarkUllmannMoleculeSized(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tg := randomGraph(rng, 40, 8, 0.06)
	p := randomGraph(rng, 8, 8, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Ullmann(p, tg, Options{})
	}
}
