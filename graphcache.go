package graphcache

import (
	"io"
	"math/rand"

	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"
	"graphcache/internal/graph"
	"graphcache/internal/iso"
)

// Core graph types (aliases keep the internal implementations fully usable
// through the public API).
type (
	// Graph is an undirected vertex-labelled simple graph.
	Graph = graph.Graph
	// Label is a vertex label.
	Label = graph.Label
	// Builder assembles graphs incrementally.
	Builder = graph.Builder
)

// Query processing types.
type (
	// QueryType selects subgraph or supergraph semantics.
	QueryType = ftv.QueryType
	// Method is "Method M": dataset + filter + verifier.
	Method = ftv.Method
	// Filter prunes the dataset to a sound candidate set.
	Filter = ftv.Filter
	// VerifierFunc tests pattern ⊑ target.
	VerifierFunc = ftv.VerifierFunc
	// FilterFactory builds a Filter over a dataset slice (nil positions
	// are tombstones); methods constructed with one take live AddGraph
	// mutations — incrementally when the filter is an InsertableFilter,
	// by rebuilding otherwise.
	FilterFactory = ftv.FilterFactory
	// InsertableFilter is the optional incremental-maintenance capability:
	// filters implementing it make AddGraph O(graph) via copy-on-write
	// inserts instead of O(dataset) rebuilds. All bundled filters do.
	InsertableFilter = ftv.InsertableFilter
	// DatasetView is one immutable snapshot of a method's live dataset.
	DatasetView = ftv.DatasetView
	// MethodResult reports an uncached Method M execution.
	MethodResult = ftv.Result
	// FeatureVector is a fixed-size, containment-safe graph summary; the
	// cache's hit-detection feature index is built from these.
	FeatureVector = ftv.FeatureVector
)

// ExtractFeatures computes a graph's containment-safe FeatureVector.
func ExtractFeatures(g *Graph) FeatureVector { return ftv.ExtractFeatures(g) }

// Subgraph and Supergraph are the two query semantics.
const (
	Subgraph   = ftv.Subgraph
	Supergraph = ftv.Supergraph
)

// Cache types.
type (
	// Cache is the GraphCache kernel.
	Cache = core.Cache
	// Config parameterizes a Cache.
	Config = core.Config
	// Result reports one cached query execution, with the Figure 3
	// quantities (C_M, S, S', C, R, A) and per-stage timings.
	Result = core.Result
	// Snapshot is the Statistics Monitor's cumulative counters.
	Snapshot = core.Snapshot
	// Policy is the pluggable replacement-policy interface (Figure 2(d)).
	Policy = core.Policy
	// Entry is a cached query visible to policies.
	Entry = core.Entry
	// HitEvent describes one entry's contribution to one query.
	HitEvent = core.HitEvent
	// HitKind classifies hits (exact / sub / super).
	HitKind = core.HitKind
	// HitRef reports one contributing hit inside a Result.
	HitRef = core.HitRef
	// Request is one query in a QueryAll batch.
	Request = core.Request
	// Outcome pairs one batch query's Result with its error.
	Outcome = core.Outcome
	// StreamOutcome is one QueryAllStream delivery: an Outcome tagged
	// with its position in the submitted batch.
	StreamOutcome = core.StreamOutcome
	// ShardStat is one shard's occupancy snapshot (entries, pending
	// window, per-shard window turns, resident bytes).
	ShardStat = core.ShardStat
	// DatasetInfo is the live dataset's shape: id space, live graphs and
	// mutation epoch (Cache.DatasetInfo).
	DatasetInfo = core.DatasetInfo
)

// DefaultShards is the lock-shard count selected when Config.Shards is 0.
const DefaultShards = core.DefaultShards

// Hit kinds.
const (
	ExactHit = core.ExactHit
	SubHit   = core.SubHit
	SuperHit = core.SuperHit
)

// NewGraph constructs a graph from labels and an edge list.
func NewGraph(labels []Label, edges [][2]int) (*Graph, error) {
	return graph.New(labels, edges)
}

// MustNewGraph is NewGraph that panics on error.
func MustNewGraph(labels []Label, edges [][2]int) *Graph {
	return graph.MustNew(labels, edges)
}

// NewBuilder returns a builder for an n-vertex graph.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// ReadDataset parses graphs in the gSpan-style text format
// ("t # id / v id label / e u v").
func ReadDataset(r io.Reader) ([]*Graph, error) { return graph.ReadAll(r) }

// WriteDataset writes graphs in the text format.
func WriteDataset(w io.Writer, gs []*Graph) error { return graph.WriteAll(w, gs) }

// SubIso reports whether pattern is (non-induced) subgraph-isomorphic to
// target, using VF2.
func SubIso(pattern, target *Graph) bool { return iso.SubIso(pattern, target) }

// Isomorphic reports whether two labelled graphs are isomorphic.
func Isomorphic(a, b *Graph) bool { return iso.Isomorphic(a, b) }

// NewGGSXMethod builds the demo deployment's Method M: a GraphGrepSX-style
// label-path index (paths up to featureLen edges) with VF2 verification.
// Dataset graphs are identified by slice position.
func NewGGSXMethod(dataset []*Graph, featureLen int) *Method {
	return ftv.NewGGSXMethod(dataset, featureLen)
}

// NewLabelMethod builds a cheap Method M that filters only by size and
// label multiset. Like every bundled method it is dynamic: the dataset
// takes live AddGraph/RemoveGraph mutations.
func NewLabelMethod(dataset []*Graph) *Method {
	return ftv.NewDynamicMethod("label/vf2", dataset,
		func(ds []*Graph) Filter { return ftv.NewLabelFilter(ds) }, nil)
}

// NewStarMethod builds a tree-feature Method M: star subtrees with up to
// maxLeaves leaves (the "tree" member of the paper's feature families).
func NewStarMethod(dataset []*Graph, maxLeaves int) *Method {
	return ftv.NewDynamicMethod("stars/vf2", dataset,
		func(ds []*Graph) Filter { return ftv.NewStarFilter(ds, maxLeaves) }, nil)
}

// NewGGSXFilter, NewStarFilter, NewLabelFilter and NewNoFilter expose the
// bundled filters for custom Method M assembly; RebuildOnly strips a
// filter's InsertableFilter capability, forcing AddGraph down the full
// factory-rebuild path (the measurable baseline for the incremental-
// insert comparison).
var (
	NewGGSXFilter  = ftv.NewGGSX
	NewStarFilter  = ftv.NewStarFilter
	NewLabelFilter = ftv.NewLabelFilter
	NewNoFilter    = ftv.NewNoFilter
	RebuildOnly    = ftv.RebuildOnly
)

// NewSIMethod builds a filterless Method M — a plain subgraph-isomorphism
// algorithm in the paper's taxonomy.
func NewSIMethod(dataset []*Graph) *Method {
	return ftv.NewDynamicMethod("si/vf2", dataset,
		func(ds []*Graph) Filter { return ftv.NewNoFilter(len(ds)) }, nil)
}

// NewMethod assembles a custom Method M from a filter and verifier
// (nil verifier means VF2). The dataset is static: use NewDynamicMethod
// when it must take live AddGraph mutations.
func NewMethod(name string, dataset []*Graph, filter Filter, verify VerifierFunc) *Method {
	return ftv.NewMethod(name, dataset, filter, verify)
}

// NewDynamicMethod assembles a Method M whose dataset takes live
// mutations: Cache.AddGraph appends graphs under fresh stable ids
// (patching the filter incrementally when it implements InsertableFilter,
// rebuilding through the factory otherwise) and Cache.RemoveGraph
// tombstones them, with every cached answer set maintained exactly.
func NewDynamicMethod(name string, dataset []*Graph, factory FilterFactory, verify VerifierFunc) *Method {
	return ftv.NewDynamicMethod(name, dataset, factory, verify)
}

// DefaultConfig mirrors the paper's demo deployment (capacity 50, window
// 10, HD replacement).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewCache builds a cache over the method. The cache is safe for
// concurrent use: entries are partitioned across Config.Shards lock
// shards and the expensive query stages run without holding any lock, so
// many goroutines can call Execute at once (see QueryAll for a bundled
// worker pool).
func NewCache(method *Method, cfg Config) (*Cache, error) { return core.New(method, cfg) }

// QueryAll processes a batch of queries through the cache with a pool of
// workers goroutines, returning outcomes positionally. workers < 2 runs
// the batch sequentially, which additionally makes the final cache
// contents deterministic.
func QueryAll(c *Cache, reqs []Request, workers int) []Outcome {
	return c.ExecuteAll(reqs, workers)
}

// QueryAllStream processes a batch like QueryAll but delivers each
// outcome on the returned channel as soon as its query finishes, tagged
// with the request index; the channel closes when the batch has drained.
func QueryAllStream(c *Cache, reqs []Request, workers int) <-chan StreamOutcome {
	return c.ExecuteAllStream(reqs, workers)
}

// SaveState serializes the cache's admitted entries to w in the binary
// GCS3 snapshot format: entries, utility counters and answer sets in
// their native compressed containers, checksummed per section. The
// snapshot is only restorable into a cache over the same dataset.
func SaveState(c *Cache, w io.Writer) error { return c.WriteState(w) }

// LoadState restores a snapshot (either the binary GCS3 format or the
// legacy v2 text format — the header is sniffed) into the cache,
// replacing its contents. Restores are all-or-nothing: any corruption is
// rejected with an error and the cache is left untouched.
func LoadState(c *Cache, r io.Reader) error { return c.ReadState(r) }

// LoadStateLazy restores a GCS3 snapshot file in lazy mode: the entry
// index and query graphs load eagerly (hit detection is immediately
// warm), answer sets stay on disk — mmapped where supported — and fault
// in as queries first touch each entry. The returned closer owns the
// backing file and must stay open for the cache's lifetime.
func LoadStateLazy(c *Cache, path string) (io.Closer, error) { return c.RestoreStateLazy(path) }

// Bundled replacement policies.
var (
	// NewLRU evicts the least recently used entry.
	NewLRU = core.NewLRU
	// NewPOP evicts the least popular (fewest hits) entry.
	NewPOP = core.NewPOP
	// NewPIN evicts the entry that saved the fewest sub-iso tests.
	NewPIN = core.NewPIN
	// NewPINC evicts the entry whose saved tests cost the least.
	NewPINC = core.NewPINC
	// NewHD blends PIN and PINC adaptively — the recommended default.
	NewHD = core.NewHD
	// NewFIFO evicts the oldest entry.
	NewFIFO = core.NewFIFO
)

// NewRand returns the seeded random-replacement baseline.
func NewRand(seed int64) Policy { return core.NewRand(seed) }

// NewPolicy constructs a bundled policy by name
// ("lru", "pop", "pin", "pinc", "hd", "fifo", "rand").
func NewPolicy(name string) (Policy, error) { return core.NewPolicy(name) }

// PolicyNames lists the bundled policy names.
func PolicyNames() []string { return core.PolicyNames() }

// Generator types for examples and experiments.
type (
	// MoleculeConfig parameterizes the AIDS-like molecule generator.
	MoleculeConfig = gen.MoleculeConfig
	// WorkloadConfig parameterizes workload generation.
	WorkloadConfig = gen.WorkloadConfig
	// Workload is a generated query sequence plus its pattern pool.
	Workload = gen.Workload
	// Query is one workload item.
	Query = gen.Query
)

// GenerateMolecules produces count AIDS-like molecule graphs with slice
// positions as ids, deterministically from the seed.
func GenerateMolecules(seed int64, count int) []*Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.Molecules(rng, count, gen.DefaultMoleculeConfig())
}

// GenerateMoleculesCfg is GenerateMolecules with an explicit config.
func GenerateMoleculesCfg(seed int64, count int, cfg MoleculeConfig) []*Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.Molecules(rng, count, cfg)
}

// GenerateSocialGraphs produces count Barabási–Albert graphs (n vertices,
// m attachments per vertex) — the "social networking" shaped dataset.
func GenerateSocialGraphs(seed int64, count, n, m int) []*Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.BADataset(rng, count, n, m, 8)
}

// CircuitConfig parameterizes the directed, edge-labelled circuit
// generator (the paper's electronic-design use case, exercising the
// generalization to directed graphs with edge labels).
type CircuitConfig = gen.CircuitConfig

// DefaultCircuitConfig returns a small combinational-circuit shape.
func DefaultCircuitConfig() CircuitConfig { return gen.DefaultCircuitConfig() }

// GenerateCircuits produces count layered-DAG circuits with gate-type
// vertex labels and wire-type edge labels, ids = positions.
func GenerateCircuits(seed int64, count int, cfg CircuitConfig) []*Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.Circuits(rng, count, cfg)
}

// ExtractPattern extracts a connected subgraph pattern with up to
// targetEdges edges from g — the standard way to generate subgraph
// queries with non-empty answers.
func ExtractPattern(seed int64, g *Graph, targetEdges int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	return gen.ExtractConnectedSubgraph(rng, g, targetEdges)
}

// DefaultWorkloadConfig mirrors the demo's 10-query workloads.
func DefaultWorkloadConfig() WorkloadConfig { return gen.DefaultWorkloadConfig() }

// GenerateWorkload generates a query workload over the dataset.
func GenerateWorkload(seed int64, dataset []*Graph, cfg WorkloadConfig) (*Workload, error) {
	rng := rand.New(rand.NewSource(seed))
	return gen.NewWorkload(rng, dataset, cfg)
}
