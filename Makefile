# GraphCache build/test entry points. `make ci` is what every PR must
# pass: vet plus the full test suite under the race detector (the
# concurrency stress and equivalence tests in internal/core and
# internal/server only earn their keep with -race armed).

GO ?= go

.PHONY: build test race vet bench throughput ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Parallel-throughput comparison: sharded engine vs serialized baseline.
throughput:
	$(GO) run ./cmd/workloadrun -throughput

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./internal/bench/

ci: vet race
