# GraphCache build/test entry points. `make ci` is what every PR must
# pass: vet + staticcheck + gofmt (`fmt-check`) + the gclint concurrency
# and hot-path contract analyzers (`lint`, see cmd/gclint), plus the
# full test suite under the race detector (the concurrency stress and
# equivalence tests in internal/core and internal/server only earn
# their keep with -race armed) and the bench smoke gate.

GO ?= go

# Coverage floor enforced by `make cover`. The suite sits at ~83%; the
# floor trails it so refactors have headroom, but a PR that tanks
# coverage fails CI. Raise it when the real number durably rises.
COVER_BASELINE ?= 80.0

.PHONY: build test race vet staticcheck fmt-check lint cover bench bench-smoke bench-json bench-memory fuzz-smoke throughput scaling profiles churn ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# staticcheck is optional locally (the sandbox image does not bundle it)
# but mandatory in CI, which installs it first and sets
# STATICCHECK_REQUIRED=1 so a missing binary is a hard failure there
# instead of a skip. A present binary's findings always fail the build.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ "$(STATICCHECK_REQUIRED)" = "1" ]; then \
		echo "staticcheck required but not installed (go install honnef.co/go/tools/cmd/staticcheck@2025.1)"; \
		exit 1; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# fmt-check fails when any tracked Go file is not gofmt-clean, listing
# the offenders. gclint's annotation grammar depends on gofmt layout
# (directives must sit on their own comment line), so this gate runs
# before lint in `make ci`.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs the repo's own static analyzers (lockorder, cowpublish,
# leaflock, noalloc, snapshotonce, determinism, ctxflow) over every
# package; any finding fails the build. -timings prints the shared
# load/typecheck cost plus per-analyzer wall time to stderr, so a slow
# analyzer is visible the moment it lands. The annotation grammar is
# documented in internal/lint and internal/core/doc.go.
lint:
	$(GO) run ./cmd/gclint -timings ./...

# lint-waivers prints the inventory of every //gclint:ignore in the tree
# with its mandatory reason — the audit surface CI uploads as an artifact.
lint-waivers:
	$(GO) run ./cmd/gclint -waivers ./...

# Full-suite coverage with a floor: fails when total statement coverage
# drops below COVER_BASELINE percent.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { \
		if (t+0 < b+0) { printf "coverage %.1f%% is below the %.1f%% baseline\n", t, b; exit 1 } \
		printf "coverage %.1f%% (baseline %.1f%%)\n", t, b }'

# Parallel-throughput comparison: per-shard-window engine vs the
# shared-window and serialized baselines, swept to GOMAXPROCS workers.
throughput:
	$(GO) run ./cmd/workloadrun -throughput

# Scaling tier: 10k graphs, 10k zipf-skewed mixed queries, full
# GOMAXPROCS worker sweep (~2 min of wall-clock per core by design).
scaling:
	$(GO) run ./cmd/workloadrun -throughput -scale large

# pprof artifacts: CPU + heap profiles of the scaling-tier run, uploaded
# by CI so hot-path regressions are diagnosable from the artifacts alone.
# Inspect with `go tool pprof profiles/scaling_cpu.pprof`.
PROFILE_DIR ?= profiles
profiles:
	mkdir -p $(PROFILE_DIR)
	$(GO) run ./cmd/gcbench -exp scaling \
		-cpuprofile $(PROFILE_DIR)/scaling_cpu.pprof -memprofile $(PROFILE_DIR)/scaling_mem.pprof

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./internal/bench/

# Tiny throughput run that additionally compares indexed vs unindexed hit
# detection and fails unless the feature index strictly reduced work
# (fewer dominance merges, no extra cache-side iso tests, pruning active).
bench-smoke:
	$(GO) run ./cmd/workloadrun -throughput -throughput-dataset 100 -throughput-queries 200 -workers 1,2 -assert-index

# Live-mutation comparison: exact cache maintenance vs dropping the cache
# at every dataset mutation (incremental index inserts vs full rebuilds).
churn:
	$(GO) run ./cmd/workloadrun -churn -assert-churn

# Short native-fuzzing smoke passes: the persistence v2 parser and the
# adaptive-bitset differential target (random op sequences vs a naive
# []bool reference, across every container mix). The committed corpora
# under internal/core/testdata/fuzz and internal/bitset/testdata/fuzz
# replay in every plain `go test`; this target additionally mutates for a
# few seconds per target so CI keeps probing fresh inputs.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^FuzzReadState$$' -fuzz '^FuzzReadState$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^FuzzReadSnapshot$$' -fuzz '^FuzzReadSnapshot$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^FuzzBitsetOps$$' -fuzz '^FuzzBitsetOps$$' -fuzztime $(FUZZTIME) ./internal/bitset/
	$(GO) test -run '^FuzzParseAnnotation$$' -fuzz '^FuzzParseAnnotation$$' -fuzztime $(FUZZTIME) ./internal/lint/

# Perf-trajectory artifact: throughput (full GOMAXPROCS worker sweep),
# large-tier scaling and churn results as JSON, stamped with the runtime
# environment (GOMAXPROCS, CPU count, Go version) and uploaded by CI per
# PR (BENCH_pr4.json and BENCH_pr5.json seed the file set; the scaling
# and env sections start with BENCH_pr6.json). No -workers flag: the
# sweep derives from GOMAXPROCS so the artifact reflects the hardware.
# The default output is a gitignored scratch path so `make ci` never
# clobbers the committed BENCH_pr*.json history; CI overrides BENCH_JSON
# to name its uploaded artifact, and cutting a new committed snapshot is
# an explicit `make bench-json BENCH_JSON=BENCH_prN.json`.
BENCH_JSON ?= bench_scratch.json
bench-json:
	$(GO) run ./cmd/workloadrun -bench-json $(BENCH_JSON) -assert-churn \
		-throughput-dataset 120 -throughput-queries 300 \
		-churn-dataset 120 -churn-queries 300 -churn-mutations 10

# Answer-set memory ledger: bytes/entry under the adaptive containers +
# interning vs the dense-equivalent baseline, on the default AND large
# tiers (the large row is the ISSUE-8 ≥40%-reduction acceptance surface).
# The same numbers land in the bench-json artifact's memory section.
bench-memory:
	$(GO) run ./cmd/gcbench -exp memory

ci: vet staticcheck fmt-check lint race fuzz-smoke bench-smoke bench-json
