# GraphCache build/test entry points. `make ci` is what every PR must
# pass: vet plus the full test suite under the race detector (the
# concurrency stress and equivalence tests in internal/core and
# internal/server only earn their keep with -race armed).

GO ?= go

.PHONY: build test race vet bench bench-smoke throughput ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Parallel-throughput comparison: sharded engine vs serialized baseline.
throughput:
	$(GO) run ./cmd/workloadrun -throughput

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./internal/bench/

# Tiny throughput run that additionally compares indexed vs unindexed hit
# detection and fails unless the feature index strictly reduced work
# (fewer dominance merges, no extra cache-side iso tests, pruning active).
bench-smoke:
	$(GO) run ./cmd/workloadrun -throughput -throughput-dataset 100 -throughput-queries 200 -workers 1,2 -assert-index

ci: vet race bench-smoke
