// Benchmarks regenerating the paper's evaluation artifacts, one per table/
// figure (DESIGN.md §4). Custom metrics are attached via b.ReportMetric:
// speedups in sub-iso test numbers and time, index/cache byte ratios.
//
// Run all:  go test -bench=. -benchmem
// One:      go test -bench=BenchmarkExpIPolicies -benchtime=1x
package graphcache_test

import (
	"testing"

	"graphcache/internal/bench"
	"graphcache/internal/core"
	"graphcache/internal/ftv"
	"graphcache/internal/gen"

	gc "graphcache"
)

// BenchmarkFig3QueryJourney reproduces EXP-F3 (Figure 3): one probe query
// over a cache warmed with 50 executed queries; reports the test speedup
// (paper example: 75/43 = 1.74).
func BenchmarkFig3QueryJourney(b *testing.B) {
	var last *bench.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig3(2018)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.TestSpeedup, "test-speedup")
	b.ReportMetric(float64(last.CM), "|C_M|")
	b.ReportMetric(float64(last.C), "|C|")
}

// BenchmarkFig2cReplacement reproduces EXP-F2C: the replacement comparison
// across the five bundled policies.
func BenchmarkFig2cReplacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunReplacement(2018, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2bWorkloadRun reproduces EXP-F2B: a 10-query demo workload
// with per-query hit accounting.
func BenchmarkFig2bWorkloadRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunWorkload(2018, 10, "hd"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpIPolicies reproduces EXP-I (§3.1.I): the policy competition
// across four workload classes; reports HD's minimum margin versus the
// per-class best (≥ ~0.9 reproduces "best or on par").
func BenchmarkExpIPolicies(b *testing.B) {
	var cells []bench.PolicyCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = bench.RunPolicyCompetition(7, 400, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := map[string]float64{}
	hd := map[string]float64{}
	for _, c := range cells {
		if c.Speedups.Tests > best[c.Workload] {
			best[c.Workload] = c.Speedups.Tests
		}
		if c.Policy == "hd" {
			hd[c.Workload] = c.Speedups.Tests
		}
	}
	margin := 1.0
	for w, bst := range best {
		if m := hd[w] / bst; m < margin {
			margin = m
		}
	}
	b.ReportMetric(margin, "hd-vs-best")
}

// BenchmarkExpIIFeatureSize reproduces EXP-II-A (§3.1.II): GGSX feature
// size L=3 vs L=4; reports the space ratio (paper ≈ 2) and time reduction
// (paper ≈ 10%).
func BenchmarkExpIIFeatureSize(b *testing.B) {
	var res *bench.FeatureSizeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunFeatureSize(11, 400, 200, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SpaceRatio, "space-ratio")
	b.ReportMetric(100*res.TimeReduction, "time-reduction-%")
}

// BenchmarkExpIIGCOverhead reproduces EXP-II-B (§3.1.II): GC's memory
// overhead relative to the FTV index versus its speedup (paper: ≈1% space,
// up to 40× time).
func BenchmarkExpIIGCOverhead(b *testing.B) {
	var res *bench.GCOverheadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunGCOverhead(13, 600, 1000, 50)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MemoryRatio, "mem-ratio")
	b.ReportMetric(res.Speedups.Tests, "test-speedup")
	b.ReportMetric(res.Speedups.Time, "time-speedup")
}

// BenchmarkHeadline reproduces EXP-HL at bench scale: a long skewed
// workload; reports aggregate and max per-query speedups ("up to 40×").
func BenchmarkHeadline(b *testing.B) {
	var res *bench.HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = bench.RunHeadline(23, 400, 1500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedups.Tests, "test-speedup")
	b.ReportMetric(res.MaxQuerySpeedup, "max-query-speedup")
}

// --- Ablation benches for DESIGN.md §6 design decisions ---

// BenchmarkCacheIndexAblation measures hit detection with and without the
// path-feature pre-filter over cached queries (FeatureLen 2 vs 0), the
// iGQ-style index ablation.
func BenchmarkCacheIndexAblation(b *testing.B) {
	dataset := gc.GenerateMolecules(3, 300)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gc.GenerateWorkload(5, dataset, gc.WorkloadConfig{
		Size: 200, Type: gc.Subgraph, PoolSize: 60,
		ZipfS: 1.2, ChainFrac: 0.6, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, featureLen := range []int{0, 2} {
		name := "feature-prefilter"
		if featureLen == 0 {
			name = "size-label-only"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.FeatureLen = featureLen
				c, err := core.New(method, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := bench.RunGCPass(c, w.Queries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyWorkers measures parallel candidate verification
// (Config.VerifyWorkers ablation).
func BenchmarkVerifyWorkers(b *testing.B) {
	dataset := gc.GenerateMolecules(9, 500)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gc.GenerateWorkload(10, dataset, gc.WorkloadConfig{
		Size: 100, Type: gc.Subgraph, PoolSize: 100,
		ZipfS: 0, ChainFrac: 0, ChainLen: 2, MinEdges: 3, MaxEdges: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "sequential", 4: "workers-4"}[workers], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.VerifyWorkers = workers
				c, err := core.New(method, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := bench.RunGCPass(c, w.Queries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaseVsGC is the simplest end-to-end comparison: the same
// workload through the bare method and through the cache.
func BenchmarkBaseVsGC(b *testing.B) {
	dataset := gc.GenerateMolecules(21, 400)
	method := ftv.NewGGSXMethod(dataset, 3)
	w, err := gc.GenerateWorkload(22, dataset, gc.WorkloadConfig{
		Size: 300, Type: gc.Subgraph, PoolSize: 60,
		ZipfS: 1.3, ChainFrac: 0.5, ChainLen: 3, MinEdges: 3, MaxEdges: 12,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("base", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.RunBasePass(method, w.Queries)
		}
	})
	b.Run("gc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := core.New(method, core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := bench.RunGCPass(c, w.Queries); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFilterAblation compares the three feature families (path trie,
// star trees, label multiset) on filtering power and speed — the §3.1.II
// discussion's "path, tree or subgraph" feature space.
func BenchmarkFilterAblation(b *testing.B) {
	dataset := gc.GenerateMolecules(41, 400)
	w, err := gc.GenerateWorkload(42, dataset, gc.WorkloadConfig{
		Size: 100, Type: gc.Subgraph, PoolSize: 100,
		ZipfS: 0, ChainFrac: 0, ChainLen: 2, MinEdges: 4, MaxEdges: 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	filters := map[string]gc.Filter{
		"ggsx-L4": gc.NewGGSXFilter(dataset, 4),
		"stars-3": gc.NewStarFilter(dataset, 3),
		"label":   gc.NewLabelFilter(dataset),
	}
	for name, f := range filters {
		b.Run(name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, q := range w.Queries {
					total += f.Candidates(q.G, q.Type).Count()
				}
			}
			b.ReportMetric(float64(total)/float64(len(w.Queries)), "avg-candidates")
			b.ReportMetric(float64(f.IndexBytes()), "index-bytes")
		})
	}
}

// BenchmarkCapacitySweep regenerates the capacity curve (hit rate and
// speedup versus cache size) of the full GraphCache evaluation.
func BenchmarkCapacitySweep(b *testing.B) {
	var pts []bench.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.RunCapacitySweep(81, 400, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(pts) > 0 {
		b.ReportMetric(pts[len(pts)-1].Speedups.Tests, "speedup-at-max-cap")
	}
}

// BenchmarkWorkloadGeneration tracks generator cost (it feeds every
// experiment, so regressions here distort everything else).
func BenchmarkWorkloadGeneration(b *testing.B) {
	dataset := gc.GenerateMolecules(31, 200)
	cfg := gen.DefaultWorkloadConfig()
	cfg.Size = 500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gc.GenerateWorkload(int64(i), dataset, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
